//! Summary statistics over frame collections (reproduces Table II rows).

use crate::object::ObjectClass;
use crate::stream::Frame;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary statistics of a set of frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of frames summarised.
    pub frames: usize,
    /// Mean number of objects per frame.
    pub mean_objects: f32,
    /// Standard deviation of objects per frame.
    pub std_objects: f32,
    /// Maximum number of objects observed in a single frame.
    pub max_objects: usize,
    /// Fraction of frames with no objects at all.
    pub empty_fraction: f32,
    /// Per-class share of all object instances (sums to 1 when objects exist).
    pub class_shares: BTreeMap<ObjectClass, f32>,
    /// Per-class fraction of frames containing at least one instance.
    pub class_presence: BTreeMap<ObjectClass, f32>,
}

impl DatasetStats {
    /// Computes statistics over a slice of frames.
    pub fn compute(frames: &[Frame]) -> Self {
        let n = frames.len();
        if n == 0 {
            return DatasetStats {
                frames: 0,
                mean_objects: 0.0,
                std_objects: 0.0,
                max_objects: 0,
                empty_fraction: 0.0,
                class_shares: BTreeMap::new(),
                class_presence: BTreeMap::new(),
            };
        }
        let counts: Vec<usize> = frames.iter().map(|f| f.object_count()).collect();
        let mean = counts.iter().sum::<usize>() as f32 / n as f32;
        let var = counts.iter().map(|&c| (c as f32 - mean).powi(2)).sum::<f32>() / n as f32;
        let max = counts.iter().copied().max().unwrap_or(0);
        let empty = counts.iter().filter(|&&c| c == 0).count() as f32 / n as f32;

        let mut instances: BTreeMap<ObjectClass, usize> = BTreeMap::new();
        let mut presence: BTreeMap<ObjectClass, usize> = BTreeMap::new();
        let mut total_instances = 0usize;
        for f in frames {
            let mut seen = std::collections::BTreeSet::new();
            for o in &f.objects {
                *instances.entry(o.class).or_insert(0) += 1;
                total_instances += 1;
                seen.insert(o.class);
            }
            for c in seen {
                *presence.entry(c).or_insert(0) += 1;
            }
        }
        let class_shares = instances
            .iter()
            .map(|(&c, &k)| (c, if total_instances == 0 { 0.0 } else { k as f32 / total_instances as f32 }))
            .collect();
        let class_presence = presence.iter().map(|(&c, &k)| (c, k as f32 / n as f32)).collect();

        DatasetStats {
            frames: n,
            mean_objects: mean,
            std_objects: var.sqrt(),
            max_objects: max,
            empty_fraction: empty,
            class_shares,
            class_presence,
        }
    }

    /// Renders the statistics as a one-line table row (used by the Table II
    /// harness).
    pub fn table_row(&self, name: &str) -> String {
        let classes: Vec<String> =
            self.class_shares.iter().map(|(c, share)| format!("{} ({:.0}%)", c.name(), share * 100.0)).collect();
        format!(
            "{:<10} frames={:<7} obj/frame={:<6.1} std={:<6.1} classes=[{}]",
            name,
            self.frames,
            self.mean_objects,
            self.std_objects,
            classes.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{BoundingBox, Color, SceneObject};

    fn frame(n_cars: usize, n_people: usize, id: u64) -> Frame {
        let mut objects = Vec::new();
        for i in 0..n_cars {
            objects.push(SceneObject {
                track_id: i as u64,
                class: ObjectClass::Car,
                color: Color::Red,
                bbox: BoundingBox::new(0.1, 0.1, 0.1, 0.1),
                velocity: (0.0, 0.0),
            });
        }
        for i in 0..n_people {
            objects.push(SceneObject {
                track_id: 100 + i as u64,
                class: ObjectClass::Person,
                color: Color::Blue,
                bbox: BoundingBox::new(0.5, 0.5, 0.05, 0.1),
                velocity: (0.0, 0.0),
            });
        }
        Frame { camera_id: 0, frame_id: id, timestamp: 0.0, objects }
    }

    #[test]
    fn empty_input_is_safe() {
        let s = DatasetStats::compute(&[]);
        assert_eq!(s.frames, 0);
        assert_eq!(s.mean_objects, 0.0);
    }

    #[test]
    fn mean_std_and_max() {
        let frames = vec![frame(1, 0, 0), frame(3, 0, 1), frame(0, 0, 2)];
        let s = DatasetStats::compute(&frames);
        assert!((s.mean_objects - 4.0 / 3.0).abs() < 1e-5);
        assert_eq!(s.max_objects, 3);
        assert!((s.empty_fraction - 1.0 / 3.0).abs() < 1e-6);
        assert!(s.std_objects > 0.0);
    }

    #[test]
    fn class_shares_and_presence() {
        let frames = vec![frame(2, 2, 0), frame(2, 0, 1)];
        let s = DatasetStats::compute(&frames);
        assert!((s.class_shares[&ObjectClass::Car] - 4.0 / 6.0).abs() < 1e-5);
        assert!((s.class_shares[&ObjectClass::Person] - 2.0 / 6.0).abs() < 1e-5);
        assert_eq!(s.class_presence[&ObjectClass::Car], 1.0);
        assert_eq!(s.class_presence[&ObjectClass::Person], 0.5);
    }

    #[test]
    fn table_row_contains_key_fields() {
        let frames = vec![frame(1, 1, 0)];
        let row = DatasetStats::compute(&frames).table_row("Demo");
        assert!(row.contains("Demo"));
        assert!(row.contains("car"));
        assert!(row.contains("person"));
    }
}
