//! Object classes, colours and bounding-box geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Object classes appearing in the paper's datasets and queries.
///
/// Coral contains `Person` (divers/visitors), Jackson contains `Car` and
/// `Person`, Detrac contains `Car`, `Bus` and `Truck`. `StopSign` and
/// `Bicycle` appear in the paper's example queries (Fig. 1(b), Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    /// A person / pedestrian.
    Person,
    /// A passenger car.
    Car,
    /// A bus.
    Bus,
    /// A truck.
    Truck,
    /// A bicycle.
    Bicycle,
    /// A stop sign (static road furniture).
    StopSign,
}

impl ObjectClass {
    /// All classes, in canonical order. The index of a class in this slice is
    /// its *class id* used by filters and metrics.
    pub const ALL: [ObjectClass; 6] = [
        ObjectClass::Person,
        ObjectClass::Car,
        ObjectClass::Bus,
        ObjectClass::Truck,
        ObjectClass::Bicycle,
        ObjectClass::StopSign,
    ];

    /// Canonical class id (index into [`ObjectClass::ALL`]).
    pub fn id(self) -> usize {
        ObjectClass::ALL.iter().position(|&c| c == self).expect("class present in ALL")
    }

    /// Class with the given canonical id.
    pub fn from_id(id: usize) -> Option<ObjectClass> {
        ObjectClass::ALL.get(id).copied()
    }

    /// Human-readable lowercase name, as used in query syntax.
    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::Person => "person",
            ObjectClass::Car => "car",
            ObjectClass::Bus => "bus",
            ObjectClass::Truck => "truck",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::StopSign => "stop-sign",
        }
    }

    /// Parses a class name (case-insensitive).
    pub fn parse(name: &str) -> Option<ObjectClass> {
        let n = name.to_ascii_lowercase();
        ObjectClass::ALL.iter().copied().find(|c| c.name() == n)
    }

    /// Typical object size as a fraction of the frame's smaller dimension
    /// (width, height). Used by the scene simulator.
    pub fn typical_size(self) -> (f32, f32) {
        match self {
            ObjectClass::Person => (0.045, 0.11),
            ObjectClass::Car => (0.12, 0.075),
            ObjectClass::Bus => (0.22, 0.12),
            ObjectClass::Truck => (0.18, 0.11),
            ObjectClass::Bicycle => (0.06, 0.08),
            ObjectClass::StopSign => (0.05, 0.05),
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Colours that object-attribute classifiers can recognise (the paper's
/// example query filters on "red car" / "blue car").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Color {
    /// Red.
    Red,
    /// Blue.
    Blue,
    /// Green.
    Green,
    /// White.
    White,
    /// Black.
    Black,
    /// Yellow.
    Yellow,
}

impl Color {
    /// All supported colours.
    pub const ALL: [Color; 6] = [Color::Red, Color::Blue, Color::Green, Color::White, Color::Black, Color::Yellow];

    /// An RGB triple in `[0, 1]` used by the rasteriser.
    pub fn rgb(self) -> [f32; 3] {
        match self {
            Color::Red => [0.85, 0.15, 0.12],
            Color::Blue => [0.15, 0.25, 0.85],
            Color::Green => [0.15, 0.7, 0.2],
            Color::White => [0.92, 0.92, 0.92],
            Color::Black => [0.08, 0.08, 0.08],
            Color::Yellow => [0.9, 0.85, 0.15],
        }
    }

    /// Lowercase colour name.
    pub fn name(self) -> &'static str {
        match self {
            Color::Red => "red",
            Color::Blue => "blue",
            Color::Green => "green",
            Color::White => "white",
            Color::Black => "black",
            Color::Yellow => "yellow",
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An axis-aligned bounding box in normalised frame coordinates.
///
/// `(x, y)` is the top-left corner with `x` growing to the right and `y`
/// growing downward; all values are in `[0, 1]` relative to the frame size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Left edge (normalised).
    pub x: f32,
    /// Top edge (normalised).
    pub y: f32,
    /// Width (normalised).
    pub w: f32,
    /// Height (normalised).
    pub h: f32,
}

impl BoundingBox {
    /// Creates a box, clamping it to the frame.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        let w = w.clamp(0.0, 1.0);
        let h = h.clamp(0.0, 1.0);
        let x = x.clamp(0.0, 1.0 - w);
        let y = y.clamp(0.0, 1.0 - h);
        BoundingBox { x, y, w, h }
    }

    /// Constructs a box from its centre point and size.
    pub fn from_center(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        BoundingBox::new(cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// The full frame `[0,1]×[0,1]`.
    pub fn full_frame() -> Self {
        BoundingBox { x: 0.0, y: 0.0, w: 1.0, h: 1.0 }
    }

    /// Centre point `(cx, cy)`.
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Right edge.
    pub fn right(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f32 {
        self.y + self.h
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// True if the point lies inside (or on the boundary of) the box.
    pub fn contains_point(&self, px: f32, py: f32) -> bool {
        px >= self.x && px <= self.right() && py >= self.y && py <= self.bottom()
    }

    /// True if `other` lies entirely within `self`.
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        other.x >= self.x && other.y >= self.y && other.right() <= self.right() && other.bottom() <= self.bottom()
    }

    /// True when the two boxes overlap with positive area.
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.x < other.right() && other.x < self.right() && self.y < other.bottom() && other.y < self.bottom()
    }

    /// Intersection area of the two boxes.
    pub fn intersection_area(&self, other: &BoundingBox) -> f32 {
        let ix = (self.right().min(other.right()) - self.x.max(other.x)).max(0.0);
        let iy = (self.bottom().min(other.bottom()) - self.y.max(other.y)).max(0.0);
        ix * iy
    }

    /// Intersection-over-union of the two boxes.
    pub fn iou(&self, other: &BoundingBox) -> f32 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// True when this box's centre lies strictly to the left of `other`'s.
    pub fn left_of(&self, other: &BoundingBox) -> bool {
        self.center().0 < other.center().0
    }

    /// True when this box's centre lies strictly above `other`'s.
    pub fn above(&self, other: &BoundingBox) -> bool {
        self.center().1 < other.center().1
    }
}

/// An object present in a frame, with its full ground-truth attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Stable track id assigned when the object enters the scene.
    pub track_id: u64,
    /// Object class.
    pub class: ObjectClass,
    /// Object colour.
    pub color: Color,
    /// Bounding box in normalised frame coordinates.
    pub bbox: BoundingBox,
    /// Velocity in normalised frame units per frame (vx, vy).
    pub velocity: (f32, f32),
}

impl SceneObject {
    /// Centre of the object's bounding box.
    pub fn center(&self) -> (f32, f32) {
        self.bbox.center()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_roundtrip() {
        for (i, &c) in ObjectClass::ALL.iter().enumerate() {
            assert_eq!(c.id(), i);
            assert_eq!(ObjectClass::from_id(i), Some(c));
        }
        assert_eq!(ObjectClass::from_id(99), None);
    }

    #[test]
    fn class_parse() {
        assert_eq!(ObjectClass::parse("Car"), Some(ObjectClass::Car));
        assert_eq!(ObjectClass::parse("stop-sign"), Some(ObjectClass::StopSign));
        assert_eq!(ObjectClass::parse("dragon"), None);
        assert_eq!(ObjectClass::Car.to_string(), "car");
    }

    #[test]
    fn color_rgb_in_unit_range() {
        for c in Color::ALL {
            assert!(c.rgb().iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(!c.name().is_empty());
        }
        assert_eq!(Color::Red.to_string(), "red");
    }

    #[test]
    fn bbox_clamps_to_frame() {
        let b = BoundingBox::new(0.95, 0.95, 0.2, 0.2);
        assert!(b.right() <= 1.0 + 1e-6);
        assert!(b.bottom() <= 1.0 + 1e-6);
    }

    #[test]
    fn bbox_center_and_area() {
        let b = BoundingBox::new(0.2, 0.4, 0.2, 0.1);
        let (cx, cy) = b.center();
        assert!((cx - 0.3).abs() < 1e-6 && (cy - 0.45).abs() < 1e-6);
        assert!((b.area() - 0.02).abs() < 1e-6);
    }

    #[test]
    fn bbox_containment() {
        let big = BoundingBox::new(0.1, 0.1, 0.5, 0.5);
        let small = BoundingBox::new(0.2, 0.2, 0.1, 0.1);
        assert!(big.contains_box(&small));
        assert!(!small.contains_box(&big));
        assert!(big.contains_point(0.3, 0.3));
        assert!(!big.contains_point(0.9, 0.9));
    }

    #[test]
    fn bbox_intersection_and_iou() {
        let a = BoundingBox::new(0.0, 0.0, 0.5, 0.5);
        let b = BoundingBox::new(0.25, 0.25, 0.5, 0.5);
        assert!(a.intersects(&b));
        assert!((a.intersection_area(&b) - 0.0625).abs() < 1e-6);
        let iou = a.iou(&b);
        assert!((iou - 0.0625 / 0.4375).abs() < 1e-5);
        let c = BoundingBox::new(0.8, 0.8, 0.1, 0.1);
        assert!(!a.intersects(&c));
        assert_eq!(a.iou(&c), 0.0);
    }

    #[test]
    fn spatial_orientation_helpers() {
        let left = BoundingBox::from_center(0.2, 0.5, 0.1, 0.1);
        let right = BoundingBox::from_center(0.8, 0.5, 0.1, 0.1);
        assert!(left.left_of(&right));
        assert!(!right.left_of(&left));
        let top = BoundingBox::from_center(0.5, 0.2, 0.1, 0.1);
        let bottom = BoundingBox::from_center(0.5, 0.8, 0.1, 0.1);
        assert!(top.above(&bottom));
        assert!(!bottom.above(&top));
    }

    #[test]
    fn typical_sizes_reasonable() {
        for c in ObjectClass::ALL {
            let (w, h) = c.typical_size();
            assert!(w > 0.0 && w < 0.5);
            assert!(h > 0.0 && h < 0.5);
        }
    }
}
