//! Process-wide persistent worker pool with a scoped spawn/join API.
//!
//! Every sharded stage in the workspace (filter batch inference, truth-grid
//! calibration, detector escalation, net batch inference) used to pay
//! `std::thread::scope` spawn/join on every batch — at fleet scale that is
//! four thread spawns per stage per batch per camera. This crate replaces the
//! per-batch spawns with a lazily grown, process-global set of long-lived
//! workers, each owning its queue; [`scope`] hands out a [`Scope`] whose
//! `spawn` dispatches borrowing closures to those workers and whose exit
//! joins them, so call sites keep the exact shape (and position-keyed merge
//! discipline) they had under `std::thread::scope`.
//!
//! # Determinism contract
//!
//! The pool adds no scheduling semantics a call site can observe: tasks are
//! whole closures, results flow only through the disjoint `&mut` slices the
//! caller partitioned before spawning, and `scope` does not return until
//! every task has finished. A computation that is bit-identical under
//! `std::thread::scope` for any worker count is therefore bit-identical under
//! the pool — and under the `VMQ_NO_POOL=1` reference mode, which pins the
//! old spawn-one-OS-thread-per-task path for A/B comparison.
//!
//! # Safety
//!
//! `Scope::spawn` lifetime-erases the task (`'env` → `'static`) before
//! handing it to a long-lived worker. This is sound for the same reason
//! `std::thread::scope` is: the borrows captured by the task outlive the
//! `scope` call (the `Scope<'env>` value, invariant in `'env`, lives inside
//! that call frame), and `scope` unconditionally joins — it does not return,
//! even on panic, until the pending-task count reaches zero. No erased task
//! can run after its borrows expire.

// Narrow exception to the workspace-wide ban: the lifetime erasure in
// `Scope::spawn` (see the Safety section above).
#![deny(unsafe_code)]

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool size; requests beyond it share the existing workers.
const MAX_WORKERS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set for the lifetime of a pool worker thread. A `spawn` issued from
    /// inside a worker runs inline on that worker instead of being queued,
    /// so nested scopes cannot deadlock the (bounded) pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The process-global pool: per-worker queues plus counters that let benches
/// and tests observe spawn behaviour (steady-state spawns must be zero).
struct Pool {
    queues: Mutex<Vec<Sender<Job>>>,
    next: AtomicUsize,
    threads_spawned: AtomicU64,
    tasks_executed: AtomicU64,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queues: Mutex::new(Vec::new()),
        next: AtomicUsize::new(0),
        threads_spawned: AtomicU64::new(0),
        tasks_executed: AtomicU64::new(0),
        queue_depth: AtomicUsize::new(0),
        max_queue_depth: AtomicUsize::new(0),
    })
}

impl Pool {
    /// Grows the pool to `want` workers (capped at [`MAX_WORKERS`]); already
    /// running workers are reused, so a warm pool spawns nothing here.
    fn ensure_workers(&self, want: usize) {
        let want = want.clamp(1, MAX_WORKERS);
        let mut queues = self.queues.lock().unwrap();
        while queues.len() < want {
            let (tx, rx) = mpsc::channel::<Job>();
            std::thread::Builder::new()
                .name(format!("vmq-exec-{}", queues.len()))
                .spawn(move || worker_loop(rx))
                .expect("spawn vmq-exec pool worker");
            self.threads_spawned.fetch_add(1, Ordering::Relaxed);
            queues.push(tx);
        }
    }

    /// Round-robin dispatch to a worker queue.
    fn dispatch(&self, job: Job) {
        let queues = self.queues.lock().unwrap();
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % queues.len();
        // Workers never exit while the process lives (their sender sits in
        // the global pool), so the send cannot fail.
        queues[slot].send(job).expect("vmq-exec worker alive");
    }
}

fn worker_loop(rx: Receiver<Job>) {
    IN_WORKER.with(|flag| flag.set(true));
    while let Ok(job) = rx.recv() {
        job();
    }
}

/// Returns the latched reference-mode flag, initialised from `VMQ_NO_POOL`.
fn spawn_mode_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| AtomicBool::new(std::env::var("VMQ_NO_POOL").is_ok_and(|v| v != "0" && !v.is_empty())))
}

/// True when tasks run on freshly spawned OS threads (the pre-pool reference
/// path) instead of the persistent workers. Latched from `VMQ_NO_POOL` at
/// first use; [`set_spawn_mode`] overrides it.
pub fn spawn_mode() -> bool {
    spawn_mode_flag().load(Ordering::Relaxed)
}

/// Forces the execution mode for A/B comparison (benches, parity tests).
/// Both modes compute bit-identical results, so flipping this concurrently
/// with other scopes affects only which path they take, never their output.
pub fn set_spawn_mode(enabled: bool) {
    spawn_mode_flag().store(enabled, Ordering::Relaxed);
}

/// Counters exposed for benches and regression gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent workers currently alive.
    pub workers: usize,
    /// OS threads ever spawned — pool growth plus every reference-mode task
    /// thread. In pooled steady state this stops moving; that invariant is
    /// what the fleet bench gates on.
    pub threads_spawned: u64,
    /// Tasks executed across all scopes (both modes, including inlined
    /// nested spawns).
    pub tasks_executed: u64,
    /// Tasks currently sitting in worker queues.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth` since process start.
    pub max_queue_depth: usize,
}

/// Snapshot of the pool counters.
pub fn stats() -> PoolStats {
    let pool = pool();
    PoolStats {
        workers: pool.queues.lock().unwrap().len(),
        threads_spawned: pool.threads_spawned.load(Ordering::Relaxed),
        tasks_executed: pool.tasks_executed.load(Ordering::Relaxed),
        queue_depth: pool.queue_depth.load(Ordering::Relaxed),
        max_queue_depth: pool.max_queue_depth.load(Ordering::Relaxed),
    }
}

/// Per-scope join state: a pending-task count guarded by a mutex/condvar
/// pair plus the first captured panic payload. Scopes are independent, so
/// any number may be in flight on the shared pool at once.
struct ScopeSync {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

/// Handle passed to the closure given to [`scope`]; its only operation is
/// [`Scope::spawn`]. Invariant in `'env` so the compiler pins the borrowed
/// environment for the whole `scope` call.
pub struct Scope<'env> {
    sync: Arc<ScopeSync>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Dispatches `task` to a pool worker (or, in `VMQ_NO_POOL` reference
    /// mode, a fresh OS thread). Tasks spawned from inside a pool worker run
    /// inline immediately. The task is guaranteed to finish before the
    /// enclosing [`scope`] call returns; a panicking task is captured and
    /// re-raised from `scope` after all siblings have finished.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let sync = Arc::clone(&self.sync);
        *sync.pending.lock().unwrap() += 1;
        let pool = pool();
        let tracked = move || {
            let outcome = catch_unwind(AssertUnwindSafe(task));
            pool.tasks_executed.fetch_add(1, Ordering::Relaxed);
            if let Err(payload) = outcome {
                let mut slot = sync.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = sync.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                sync.done.notify_all();
            }
        };
        if IN_WORKER.with(|flag| flag.get()) {
            tracked();
            return;
        }
        if spawn_mode() {
            let job = erase(Box::new(tracked));
            pool.threads_spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name("vmq-exec-ref".into())
                .spawn(job)
                .expect("spawn reference-mode task thread");
            return;
        }
        pool.ensure_workers(1);
        let depth = pool.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        pool.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let tracked = move || {
            pool.queue_depth.fetch_sub(1, Ordering::Relaxed);
            tracked();
        };
        pool.dispatch(erase(Box::new(tracked)));
    }

    /// Blocks until every spawned task has finished.
    fn join(&self) {
        let mut pending = self.sync.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.sync.done.wait(pending).unwrap();
        }
    }
}

/// Lifetime-erases a task so a long-lived worker can hold it. Sound because
/// [`scope`] joins before returning — see the module-level Safety section.
#[allow(unsafe_code)]
fn erase(task: Box<dyn FnOnce() + Send + '_>) -> Job {
    // SAFETY: only the vtable lifetime is erased (same layout, `'_` →
    // `'static`). The borrows the closure captures outlive every call:
    // the sole caller is `Scope::spawn`, and `scope` joins the pending
    // counter to zero before returning, so no erased task can run — or
    // exist — past `'env`. Panics don't escape this invariant either:
    // `scope` joins before resuming them.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(task) }
}

/// Runs `body` with a [`Scope`] whose spawns execute on the persistent pool,
/// sized (grown, never shrunk) to at least `workers` threads. Does not
/// return until every spawned task has finished; if `body` or any task
/// panicked, the panic resumes here after the join (first task panic wins
/// when `body` ran to completion).
///
/// Drop-in replacement for the sharded-stage uses of `std::thread::scope`:
/// partition the output into disjoint `&mut` chunks, spawn one task per
/// chunk, merge by position after `scope` returns.
pub fn scope<'env, R>(workers: usize, body: impl FnOnce(&Scope<'env>) -> R) -> R {
    if !spawn_mode() && !IN_WORKER.with(|flag| flag.get()) {
        pool().ensure_workers(workers.max(1));
    }
    let scope = Scope {
        sync: Arc::new(ScopeSync { pending: Mutex::new(0), done: Condvar::new(), panic: Mutex::new(None) }),
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
    scope.join();
    let task_panic = scope.sync.panic.lock().unwrap().take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = task_panic {
                resume_unwind(payload);
            }
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical call-site shape: disjoint `&mut` chunks of a borrowed
    /// output vector, one task per chunk, position-keyed results.
    fn square_sharded(input: &[u64], workers: usize) -> Vec<u64> {
        let n = input.len();
        if n == 0 {
            return Vec::new();
        }
        let chunk = n.div_ceil(workers.max(1));
        let mut out = vec![0u64; n];
        scope(workers, |s| {
            for (slots, part) in out.chunks_mut(chunk).zip(input.chunks(chunk)) {
                s.spawn(move || {
                    for (slot, x) in slots.iter_mut().zip(part) {
                        *slot = x * x;
                    }
                });
            }
        });
        out
    }

    #[test]
    fn scoped_tasks_borrow_and_merge_by_position() {
        let input: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
        for workers in [1, 2, 4, 7] {
            assert_eq!(square_sharded(&input, workers), expect);
        }
    }

    #[test]
    fn empty_scope_and_zero_workers_are_fine() {
        let out: i32 = scope(0, |_| 41) + 1;
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_scope_runs_inline_without_deadlock() {
        let input: Vec<u64> = (0..32).collect();
        let mut out = vec![0u64; 32];
        scope(2, |s| {
            for (slots, part) in out.chunks_mut(16).zip(input.chunks(16)) {
                s.spawn(move || {
                    // A scope opened on a pool worker: its spawns must run
                    // inline rather than queue behind the enclosing tasks.
                    let inner = square_sharded(part, 2);
                    slots.copy_from_slice(&inner);
                });
            }
        });
        let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(2, |s| {
                s.spawn(|| {});
                s.spawn(|| panic!("boom from task"));
                s.spawn(|| {});
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom from task");
    }

    /// Counter-sensitive assertions live in one test so concurrent tests in
    /// this binary (which only ever *use* the warm pool) cannot race them.
    #[test]
    fn warm_pool_spawns_nothing_and_reference_mode_spawns_per_task() {
        let input: Vec<u64> = (0..64).collect();
        // Pin pooled dispatch: the suite may run with VMQ_NO_POOL=1 latched,
        // and this test measures the pool specifically.
        let was = spawn_mode();
        set_spawn_mode(false);
        // Warm beyond anything the sibling tests request.
        pool().ensure_workers(8);
        assert!(stats().workers >= 8);
        // Siblings flipping the global mode mid-window can legitimately
        // spawn; retry until a window sees the counter quiescent.
        let mut attempt = 0;
        let (warm, steady) = loop {
            let before = stats();
            for _ in 0..50 {
                square_sharded(&input, 4);
            }
            let after = stats();
            if after.threads_spawned == before.threads_spawned || attempt == 4 {
                break (before, after);
            }
            attempt += 1;
        };
        assert_eq!(steady.threads_spawned, warm.threads_spawned, "warm pool must not spawn in steady state");
        assert!(steady.tasks_executed >= warm.tasks_executed + 200);

        // Reference mode: same results, one fresh OS thread per task.
        set_spawn_mode(true);
        let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
        assert_eq!(square_sharded(&input, 4), expect);
        set_spawn_mode(was);
        let after = stats();
        assert!(after.threads_spawned >= steady.threads_spawned + 4, "reference mode must spawn per task");
    }

    #[test]
    fn spawn_mode_env_is_overridable() {
        let was = spawn_mode();
        set_spawn_mode(!was);
        assert_eq!(spawn_mode(), !was);
        set_spawn_mode(was);
        assert_eq!(spawn_mode(), was);
    }
}
