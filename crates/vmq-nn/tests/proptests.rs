//! Property-based tests of the tensor and kernel layer.

use proptest::prelude::*;
use vmq_nn::ops::{
    conv2d_forward, global_avg_pool, matmul, matmul_a_bt, matmul_at_b, maxpool2d_forward, softmax, ConvSpec,
};
use vmq_nn::Tensor;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matrix multiplication distributes over scalar multiplication.
    #[test]
    fn matmul_scales_linearly(data_a in tensor_strategy(12), data_b in tensor_strategy(12), k in -3.0f32..3.0) {
        let a = Tensor::from_vec(data_a, vec![3, 4]);
        let b = Tensor::from_vec(data_b, vec![4, 3]);
        let scaled = matmul(&a.scale(k), &b);
        let reference = matmul(&a, &b).scale(k);
        for (x, y) in scaled.data().iter().zip(reference.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    /// The transposed-operand variants agree with plain matmul.
    #[test]
    fn transposed_matmuls_agree(data_a in tensor_strategy(6), data_b in tensor_strategy(6)) {
        let a = Tensor::from_vec(data_a.clone(), vec![2, 3]);
        let b = Tensor::from_vec(data_b, vec![3, 2]);
        let reference = matmul(&a, &b);
        // a stored transposed: [3, 2] with element (i,j) = a(j,i)
        let mut at = vec![0.0f32; 6];
        for i in 0..2 {
            for j in 0..3 {
                at[j * 2 + i] = data_a[i * 3 + j];
            }
        }
        let via_at = matmul_at_b(&Tensor::from_vec(at, vec![3, 2]), &b);
        for (x, y) in via_at.data().iter().zip(reference.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // b stored transposed
        let bt_data: Vec<f32> = {
            let bd = b.data();
            let mut t = vec![0.0f32; 6];
            for i in 0..3 {
                for j in 0..2 {
                    t[j * 3 + i] = bd[i * 2 + j];
                }
            }
            t
        };
        let via_bt = matmul_a_bt(&a, &Tensor::from_vec(bt_data, vec![2, 3]));
        for (x, y) in via_bt.data().iter().zip(reference.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Convolution output shape follows the ConvSpec arithmetic and the
    /// response to an all-zero input is exactly the bias.
    #[test]
    fn conv_shape_and_bias(channels in 1usize..4, size in 4usize..9, bias in -2.0f32..2.0) {
        let spec = ConvSpec { in_channels: channels, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
        let input = Tensor::zeros(vec![channels, size, size]);
        let weight = Tensor::full(vec![2, channels * 9], 0.3);
        let (out, _) = conv2d_forward(&input, &weight, &[bias, -bias], &spec);
        prop_assert_eq!(out.shape(), &[2, size, size]);
        for v in &out.data()[..size * size] {
            prop_assert!((v - bias).abs() < 1e-6);
        }
    }

    /// Global average pooling preserves total mass per channel.
    #[test]
    fn gap_is_channel_mean(data in tensor_strategy(2 * 4 * 4)) {
        let t = Tensor::from_vec(data, vec![2, 4, 4]);
        let pooled = global_avg_pool(&t);
        for c in 0..2 {
            let manual: f32 = t.data()[c * 16..(c + 1) * 16].iter().sum::<f32>() / 16.0;
            prop_assert!((pooled.data()[c] - manual).abs() < 1e-4);
        }
    }

    /// Max pooling never produces a value absent from the input and never
    /// produces something smaller than the input mean.
    #[test]
    fn maxpool_upper_bound(data in tensor_strategy(16)) {
        let t = Tensor::from_vec(data, vec![1, 4, 4]);
        let (out, idx) = maxpool2d_forward(&t, 2);
        prop_assert_eq!(out.len(), 4);
        prop_assert_eq!(idx.len(), 4);
        for (&o, &i) in out.data().iter().zip(&idx) {
            prop_assert_eq!(o, t.data()[i]);
        }
        prop_assert!(out.max() <= t.max() + 1e-6);
        prop_assert!(out.min() >= t.min() - 1e-6);
    }

    /// Softmax is a probability distribution regardless of input.
    #[test]
    fn softmax_is_distribution(data in tensor_strategy(8)) {
        let p = softmax(&data);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Element-wise tensor algebra: (a + b) - b == a.
    #[test]
    fn add_sub_roundtrip(data_a in tensor_strategy(10), data_b in tensor_strategy(10)) {
        let a = Tensor::from_vec(data_a, vec![10]);
        let b = Tensor::from_vec(data_b, vec![10]);
        let roundtrip = a.add(&b).sub(&b);
        for (x, y) in roundtrip.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }
}
