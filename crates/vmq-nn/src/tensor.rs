//! Dense row-major tensors of `f32` with explicit shapes.
//!
//! The tensor type is deliberately simple: a `Vec<f32>` plus a shape vector.
//! Everything the filter networks need (element-wise arithmetic, reshaping,
//! reductions, 2-D / 3-D indexing) is provided as inherent methods; the heavy
//! numeric kernels live in [`crate::ops`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Shapes follow the `CHW` convention for image-like data (channels, height,
/// width) and `[rows, cols]` for matrices. A scalar is represented by an empty
/// shape and a single element.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(f, "data=[{}, {}, ..; {}])", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor { data: vec![0.0; n], shape }
    }

    /// Creates a tensor filled with the given value.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Tensor { data: vec![value; n], shape }
    }

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if the data length does not match the product of the shape.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length {} does not match shape {:?}", data.len(), shape);
        Tensor { data, shape }
    }

    /// Creates a scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: vec![] }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing the same data ordering.
    ///
    /// # Panics
    /// Panics when the element count changes.
    pub fn reshape(&self, shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "cannot reshape {:?} to {:?}", self.shape, shape);
        Tensor { data: self.data.clone(), shape }
    }

    /// Reshapes in place (no data copy).
    pub fn reshape_in_place(&mut self, shape: Vec<usize>) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "cannot reshape {:?} to {:?}", self.shape, shape);
        self.shape = shape;
    }

    /// Element at a 2-D index for `[rows, cols]` tensors.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element at a 2-D index for `[rows, cols]` tensors.
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Element at a 3-D (`CHW`) index.
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (hh, ww) = (self.shape[1], self.shape[2]);
        self.data[c * hh * ww + h * ww + w]
    }

    /// Mutable element at a 3-D (`CHW`) index.
    pub fn at3_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (hh, ww) = (self.shape[1], self.shape[2]);
        &mut self.data[c * hh * ww + h * ww + w]
    }

    /// Element-wise addition producing a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Element-wise subtraction producing a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in sub");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Element-wise (Hadamard) product producing a new tensor.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in mul");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Multiplies every element by a scalar, producing a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * s).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// In-place `self += other * alpha` (axpy).
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * alpha;
        }
    }

    /// In-place fill with a constant.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (0 for empty tensors).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| if v > bv { (i, v) } else { (bi, bv) })
            .0
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Applies a function element-wise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Applies a function element-wise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Returns a copy of channel `c` of a `CHW` tensor as an `[H, W]` matrix.
    pub fn channel(&self, c: usize) -> Tensor {
        assert_eq!(self.shape.len(), 3, "channel() requires a CHW tensor");
        let (h, w) = (self.shape[1], self.shape[2]);
        let start = c * h * w;
        Tensor::from_vec(self.data[start..start + h * w].to_vec(), vec![h, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(vec![2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(vec![4], 2.5);
        assert_eq!(f.sum(), 10.0);
    }

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![2, 2]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], vec![2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(vec![3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![3]);
        a.add_scaled(&g, 0.5);
        a.add_scaled(&g, 0.5);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -4.0, 3.0], vec![3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.norm() - (26.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), vec![3, 4]);
        let r = t.reshape(vec![2, 2, 3]);
        assert_eq!(r.at3(1, 1, 2), 11.0);
        assert_eq!(r.reshape(vec![3, 4]), t);
    }

    #[test]
    fn chw_indexing_and_channel() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), vec![2, 3, 4]);
        assert_eq!(t.at3(1, 2, 3), 23.0);
        let ch = t.channel(1);
        assert_eq!(ch.shape(), &[3, 4]);
        assert_eq!(ch.at2(0, 0), 12.0);
    }

    #[test]
    fn map_and_non_finite() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], vec![2]);
        let r = t.map(|v| v.max(0.0));
        assert_eq!(r.data(), &[0.0, 2.0]);
        assert!(!t.has_non_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], vec![1]);
        assert!(bad.has_non_finite());
    }
}
