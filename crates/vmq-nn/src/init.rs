//! Weight initialisation schemes (Kaiming / Xavier uniform) and RNG helpers.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed; all training in the workspace is
/// seeded so experiments are reproducible run-to-run.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Kaiming (He) uniform initialisation, appropriate for ReLU family networks.
///
/// `fan_in` is the number of input connections per output unit.
pub fn kaiming_uniform(shape: Vec<usize>, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0f32 / fan_in.max(1) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// Xavier (Glorot) uniform initialisation, appropriate for linear / sigmoid
/// output heads.
pub fn xavier_uniform(shape: Vec<usize>, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0f32 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// Uniform initialisation in `[low, high)`.
pub fn uniform(shape: Vec<usize>, low: f32, high: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(low..high)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = kaiming_uniform(vec![4, 4], 4, &mut seeded_rng(1));
        let b = kaiming_uniform(vec![4, 4], 4, &mut seeded_rng(1));
        assert_eq!(a, b);
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let mut rng = seeded_rng(2);
        let t = kaiming_uniform(vec![1000], 600, &mut rng);
        let bound = (6.0f32 / 600.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // not all zero
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn xavier_respects_bounds() {
        let mut rng = seeded_rng(3);
        let t = xavier_uniform(vec![100], 30, 50, &mut rng);
        let bound = (6.0f32 / 80.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn uniform_range() {
        let mut rng = seeded_rng(4);
        let t = uniform(vec![200], -0.5, 0.5, &mut rng);
        assert!(t.max() < 0.5 && t.min() >= -0.5);
    }
}
