//! A small generic training loop for [`Sequential`] networks.
//!
//! The filter networks in `vmq-filters` have multi-head architectures with
//! bespoke losses (Eq. 2 / Eq. 3) and therefore implement their own epoch
//! loops, but they reuse the batching, shuffling and bookkeeping utilities
//! defined here. The plain loop in [`fit`] is used by the count-only OD-COF
//! filter and by tests.

use crate::net::Sequential;
use crate::optim::Optimizer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Gradients are averaged over this many samples before an optimiser step.
    pub batch_size: usize,
    /// Shuffle sample order every epoch.
    pub shuffle: bool,
    /// Stop early when the epoch loss drops below this value (if set).
    pub target_loss: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 5, batch_size: 16, shuffle: true, target_loss: None }
    }
}

/// Summary statistics for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean loss over all samples in the epoch.
    pub mean_loss: f32,
    /// Number of samples seen.
    pub samples: usize,
}

/// Returns a (possibly shuffled) permutation of `0..n`.
pub fn sample_order(n: usize, shuffle: bool, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    if shuffle {
        idx.shuffle(rng);
    }
    idx
}

/// Splits an index permutation into batches of at most `batch_size`.
pub fn batches(order: &[usize], batch_size: usize) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    order.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Trains `net` on `(input, target)` pairs with the given loss.
///
/// `loss_fn` returns `(loss, gradient_wrt_prediction)` for one sample. The
/// returned vector contains one [`EpochStats`] per completed epoch.
pub fn fit(
    net: &mut Sequential,
    data: &[(Tensor, Tensor)],
    loss_fn: &dyn Fn(&Tensor, &Tensor) -> (f32, Tensor),
    opt: &mut dyn Optimizer,
    config: &TrainConfig,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    let mut history = Vec::with_capacity(config.epochs);
    if data.is_empty() {
        return history;
    }
    for epoch in 0..config.epochs {
        let order = sample_order(data.len(), config.shuffle, rng);
        let mut epoch_loss = 0.0f64;
        for batch in batches(&order, config.batch_size) {
            net.zero_grad();
            for &i in &batch {
                let (x, y) = &data[i];
                let pred = net.forward(x);
                let (loss, grad) = loss_fn(&pred, y);
                epoch_loss += loss as f64;
                // average gradient over the batch
                net.backward(&grad.scale(1.0 / batch.len() as f32));
            }
            opt.step(&mut net.parameters());
        }
        let stats = EpochStats { epoch, mean_loss: (epoch_loss / data.len() as f64) as f32, samples: data.len() };
        history.push(stats);
        if let Some(target) = config.target_loss {
            if stats.mean_loss <= target {
                break;
            }
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::layer::{Act, Activation, Dense};
    use crate::loss::mse_loss;
    use crate::optim::Adam;

    #[test]
    fn sample_order_is_permutation() {
        let mut rng = seeded_rng(0);
        let order = sample_order(10, true, &mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batches_cover_all_indices() {
        let order: Vec<usize> = (0..10).collect();
        let bs = batches(&order, 3);
        assert_eq!(bs.len(), 4);
        assert_eq!(bs.iter().map(|b| b.len()).sum::<usize>(), 10);
        assert_eq!(bs[3], vec![9]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = batches(&[0, 1], 0);
    }

    #[test]
    fn fit_learns_linear_function() {
        // y = 3x - 1, learnable by a 1-layer network.
        let mut rng = seeded_rng(7);
        let data: Vec<(Tensor, Tensor)> = (0..40)
            .map(|i| {
                let x = (i as f32 / 20.0) - 1.0;
                (Tensor::from_vec(vec![x], vec![1]), Tensor::from_vec(vec![3.0 * x - 1.0], vec![1]))
            })
            .collect();
        let mut net = Sequential::new(vec![Box::new(Dense::new(1, 1, 3))]);
        let mut opt = Adam::new(0.05);
        let config = TrainConfig { epochs: 120, batch_size: 8, shuffle: true, target_loss: Some(1e-4) };
        let history = fit(&mut net, &data, &mse_loss, &mut opt, &config, &mut rng);
        assert!(!history.is_empty());
        let last = history.last().unwrap();
        assert!(last.mean_loss < 0.05, "final loss {}", last.mean_loss);
        assert!(history[0].mean_loss > last.mean_loss, "loss should decrease");
    }

    #[test]
    fn fit_with_hidden_layer_learns_nonlinearity() {
        // y = |x| requires a nonlinearity.
        let mut rng = seeded_rng(11);
        let data: Vec<(Tensor, Tensor)> = (0..60)
            .map(|i| {
                let x = (i as f32 / 30.0) - 1.0;
                (Tensor::from_vec(vec![x], vec![1]), Tensor::from_vec(vec![x.abs()], vec![1]))
            })
            .collect();
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(1, 8, 1)),
            Box::new(Activation::new(Act::Relu)),
            Box::new(Dense::new(8, 1, 2)),
        ]);
        let mut opt = Adam::new(0.02);
        let config = TrainConfig { epochs: 150, batch_size: 10, shuffle: true, target_loss: Some(5e-3) };
        let history = fit(&mut net, &data, &mse_loss, &mut opt, &config, &mut rng);
        assert!(history.last().unwrap().mean_loss < 0.05);
    }

    #[test]
    fn fit_on_empty_data_is_noop() {
        let mut rng = seeded_rng(0);
        let mut net = Sequential::new(vec![Box::new(Dense::new(1, 1, 0))]);
        let mut opt = Adam::new(0.01);
        let history = fit(&mut net, &[], &mse_loss, &mut opt, &TrainConfig::default(), &mut rng);
        assert!(history.is_empty());
    }

    #[test]
    fn early_stop_truncates_history() {
        let mut rng = seeded_rng(1);
        let data = vec![(Tensor::from_vec(vec![0.0], vec![1]), Tensor::from_vec(vec![0.0], vec![1]))];
        let mut net = Sequential::new(vec![Box::new(Dense::new(1, 1, 0))]);
        let mut opt = Adam::new(0.0); // no learning needed; loss may already be tiny
        let config = TrainConfig { epochs: 50, batch_size: 1, shuffle: false, target_loss: Some(f32::MAX) };
        let history = fit(&mut net, &data, &mse_loss, &mut opt, &config, &mut rng);
        assert_eq!(history.len(), 1, "should stop after the first epoch");
    }
}
