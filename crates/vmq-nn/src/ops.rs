//! Numeric kernels: matrix multiplication, im2col convolution and pooling.
//!
//! These are the hot loops of filter training and inference. They are written
//! with a cache-friendly `i-k-j` loop order and flat slices so the compiler
//! can vectorise them; no unsafe code is used.

use crate::tensor::Tensor;

/// `C = A (m×k) * B (k×n)`, row-major, returning an `[m, n]` tensor.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {} vs {}", k, k2);
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, vec![m, n])
}

/// `C = Aᵀ (k×m)ᵀ * B (k×n)` computed without materialising the transpose.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2);
    assert_eq!(b.shape().len(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_at_b inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let o_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += aki * bv;
            }
        }
    }
    Tensor::from_vec(out, vec![m, n])
}

/// `C = A (m×k) * Bᵀ (n×k)ᵀ` computed without materialising the transpose.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2);
    assert_eq!(b.shape().len(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_a_bt inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, vec![m, n])
}

/// Matrix–vector product `y = A (m×k) * x (k)`.
pub fn matvec(a: &Tensor, x: &[f32]) -> Vec<f32> {
    assert_eq!(a.shape().len(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    assert_eq!(x.len(), k, "matvec dimension mismatch");
    let ad = a.data();
    (0..m).map(|i| ad[i * k..(i + 1) * k].iter().zip(x).map(|(a, b)| a * b).sum()).collect()
}

/// Parameters describing a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvSpec {
    /// Output spatial size for an input of `h × w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }
}

/// Unfolds an input `[C, H, W]` into a `[C*k*k, OH*OW]` matrix (im2col).
pub fn im2col(input: &Tensor, spec: &ConvSpec) -> Tensor {
    assert_eq!(input.shape().len(), 3, "im2col expects CHW input");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert_eq!(c, spec.in_channels, "im2col channel mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let k = spec.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ch * k * k + ky * k + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = data[ch * h * w + iy * w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, vec![rows, cols])
}

/// Folds a `[C*k*k, OH*OW]` column matrix back into a `[C, H, W]` tensor,
/// accumulating overlapping contributions (the adjoint of [`im2col`]).
pub fn col2im(cols_t: &Tensor, spec: &ConvSpec, h: usize, w: usize) -> Tensor {
    let c = spec.in_channels;
    let k = spec.kernel;
    let (oh, ow) = spec.out_size(h, w);
    let cols = oh * ow;
    assert_eq!(cols_t.shape(), &[c * k * k, cols], "col2im shape mismatch");
    let mut out = Tensor::zeros(vec![c, h, w]);
    let src = cols_t.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ch * k * k + ky * k + kx;
                let src_row = &src[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[ch * h * w + iy * w + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    out
}

/// 2-D convolution via im2col + matmul.
///
/// `input` is `[C_in, H, W]`, `weight` is `[C_out, C_in*k*k]`, `bias` is
/// `[C_out]`; the result is `[C_out, OH, OW]`. The column matrix is also
/// returned so the backward pass can reuse it.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &[f32], spec: &ConvSpec) -> (Tensor, Tensor) {
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let (oh, ow) = spec.out_size(h, w);
    let cols = im2col(input, spec);
    let mut out = matmul(weight, &cols); // [C_out, OH*OW]
    let od = out.data_mut();
    for (co, &b) in bias.iter().enumerate() {
        for v in &mut od[co * oh * ow..(co + 1) * oh * ow] {
            *v += b;
        }
    }
    (out.reshape(vec![spec.out_channels, oh, ow]), cols)
}

/// Backward pass of [`conv2d_forward`].
///
/// Returns `(grad_input, grad_weight, grad_bias)` given the upstream gradient
/// `grad_out` (`[C_out, OH, OW]`) and the cached column matrix.
pub fn conv2d_backward(
    grad_out: &Tensor,
    weight: &Tensor,
    cols: &Tensor,
    spec: &ConvSpec,
    in_h: usize,
    in_w: usize,
) -> (Tensor, Tensor, Vec<f32>) {
    let (co, oh, ow) = (grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2]);
    assert_eq!(co, spec.out_channels);
    let g2 = grad_out.reshape(vec![co, oh * ow]);
    // grad_weight = grad_out (co × ohow) * colsᵀ (ohow × ckk)
    let grad_weight = matmul_a_bt(&g2, cols);
    // grad_bias = row sums of grad_out
    let gd = g2.data();
    let grad_bias: Vec<f32> = (0..co).map(|c| gd[c * oh * ow..(c + 1) * oh * ow].iter().sum()).collect();
    // grad_cols = weightᵀ (ckk × co) * grad_out (co × ohow)
    let grad_cols = matmul_at_b(weight, &g2);
    let grad_input = col2im(&grad_cols, spec, in_h, in_w);
    (grad_input, grad_weight, grad_bias)
}

/// 2×2 (or general square) max pooling over a `CHW` tensor.
///
/// Returns the pooled tensor and the flat argmax indices used for backward.
pub fn maxpool2d_forward(input: &Tensor, size: usize) -> (Tensor, Vec<usize>) {
    assert_eq!(input.shape().len(), 3);
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert!(h % size == 0 && w % size == 0, "maxpool2d requires divisible spatial dims ({}x{} by {})", h, w, size);
    let (oh, ow) = (h / size, w / size);
    let mut out = Tensor::zeros(vec![c, oh, ow]);
    let mut idx = vec![0usize; c * oh * ow];
    let data = input.data();
    let od = out.data_mut();
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for dy in 0..size {
                    for dx in 0..size {
                        let i = ch * h * w + (oy * size + dy) * w + ox * size + dx;
                        if data[i] > best {
                            best = data[i];
                            best_i = i;
                        }
                    }
                }
                let o = ch * oh * ow + oy * ow + ox;
                od[o] = best;
                idx[o] = best_i;
            }
        }
    }
    (out, idx)
}

/// Backward pass of [`maxpool2d_forward`].
pub fn maxpool2d_backward(grad_out: &Tensor, idx: &[usize], in_shape: &[usize]) -> Tensor {
    let mut grad_in = Tensor::zeros(in_shape.to_vec());
    let gi = grad_in.data_mut();
    for (o, &i) in idx.iter().enumerate() {
        gi[i] += grad_out.data()[o];
    }
    grad_in
}

/// Global average pooling of a `[C, H, W]` tensor into a `[C]` vector.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.shape().len(), 3);
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let area = (h * w) as f32;
    let data = input.data();
    let out: Vec<f32> = (0..c).map(|ch| data[ch * h * w..(ch + 1) * h * w].iter().sum::<f32>() / area).collect();
    Tensor::from_vec(out, vec![c])
}

/// Backward pass of [`global_avg_pool`]: spreads each channel gradient evenly.
pub fn global_avg_pool_backward(grad_out: &Tensor, in_shape: &[usize]) -> Tensor {
    let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
    let area = (h * w) as f32;
    let mut grad_in = Tensor::zeros(vec![c, h, w]);
    let gi = grad_in.data_mut();
    for ch in 0..c {
        let g = grad_out.data()[ch] / area;
        for v in &mut gi[ch * h * w..(ch + 1) * h * w] {
            *v = g;
        }
    }
    grad_in
}

/// Numerically stable softmax over a flat vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|&v| (v - m).exp()).collect();
    let s: f32 = exps.iter().sum();
    exps.iter().map(|&v| v / s).collect()
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: Vec<usize>) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn matmul_small() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], vec![3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = t(vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0], vec![3, 2]);
        let reference = matmul(&a, &b);
        // A^T has shape [3,2]; matmul_at_b(Aᵀ-storage, B) should equal A*B when
        // we pass A stored transposed.
        let a_t = t(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], vec![3, 2]);
        let via_at = matmul_at_b(&a_t, &b);
        assert_eq!(via_at.data(), reference.data());
        // B^T stored as [2,3]
        let b_t = t(vec![1.0, -1.0, 0.0, 0.5, 2.0, 3.0], vec![2, 3]);
        let via_bt = matmul_a_bt(&a, &b_t);
        assert_eq!(via_bt.data(), reference.data());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let y = matvec(&a, &[5.0, 6.0]);
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let input = t((1..=9).map(|v| v as f32).collect(), vec![1, 3, 3]);
        let weight = t(vec![1.0], vec![1, 1]);
        let (out, _) = conv2d_forward(&input, &weight, &[0.0], &spec);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv_known_values() {
        // 2x2 average-ish kernel on a 3x3 input, no padding.
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 1, padding: 0 };
        let input = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], vec![1, 3, 3]);
        let weight = t(vec![1.0, 1.0, 1.0, 1.0], vec![1, 4]);
        let (out, _) = conv2d_forward(&input, &weight, &[0.0], &spec);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_padding_preserves_size() {
        let spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let input = Tensor::full(vec![2, 5, 5], 1.0);
        let weight = Tensor::full(vec![3, 2 * 9], 0.1);
        let (out, _) = conv2d_forward(&input, &weight, &[0.0; 3], &spec);
        assert_eq!(out.shape(), &[3, 5, 5]);
        // centre cell sees all 18 inputs => 1.8
        assert!((out.at3(0, 2, 2) - 1.8).abs() < 1e-5);
        // corner cell sees 8 inputs => 0.8
        assert!((out.at3(0, 0, 0) - 0.8).abs() < 1e-5);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let spec = ConvSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let x = t((0..2 * 4 * 4).map(|v| (v as f32 * 0.37).sin()).collect(), vec![2, 4, 4]);
        let cols = im2col(&x, &spec);
        let y = t((0..cols.len()).map(|v| (v as f32 * 0.11).cos()).collect(), cols.shape().to_vec());
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 4, 4);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn maxpool_forward_backward() {
        let input = t(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            vec![1, 4, 4],
        );
        let (out, idx) = maxpool2d_forward(&input, 2);
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
        let grad_out = t(vec![1.0, 2.0, 3.0, 4.0], vec![1, 2, 2]);
        let grad_in = maxpool2d_backward(&grad_out, &idx, input.shape());
        assert_eq!(grad_in.data()[5], 1.0);
        assert_eq!(grad_in.data()[7], 2.0);
        assert_eq!(grad_in.data()[13], 3.0);
        assert_eq!(grad_in.data()[15], 4.0);
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn gap_forward_backward() {
        let input = t(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], vec![2, 2, 2]);
        let out = global_avg_pool(&input);
        assert_eq!(out.data(), &[2.5, 10.0]);
        let grad = global_avg_pool_backward(&Tensor::from_vec(vec![4.0, 8.0], vec![2]), input.shape());
        assert_eq!(grad.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }
}
