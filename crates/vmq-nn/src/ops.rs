//! Numeric kernels: matrix multiplication, im2col convolution and pooling.
//!
//! These are the hot loops of filter training and inference. They are written
//! with a cache-friendly `i-k-j` loop order and flat slices so the compiler
//! can vectorise them; no unsafe code is used here. The scalar `_into`
//! kernels below are the bit-exact reference the runtime-dispatched SIMD
//! variants in [`crate::kernels`] are held to.

use crate::tensor::Tensor;

/// `C = A (m×k) * B (k×n)`, row-major, returning an `[m, n]` tensor.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {} vs {}", k, k2);
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, vec![m, n])
}

/// `C = Aᵀ (k×m)ᵀ * B (k×n)` computed without materialising the transpose.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2);
    assert_eq!(b.shape().len(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_at_b inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let o_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += aki * bv;
            }
        }
    }
    Tensor::from_vec(out, vec![m, n])
}

/// `C = A (m×k) * Bᵀ (n×k)ᵀ` computed without materialising the transpose.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2);
    assert_eq!(b.shape().len(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_a_bt inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, vec![m, n])
}

/// Matrix–vector product `y = A (m×k) * x (k)`.
pub fn matvec(a: &Tensor, x: &[f32]) -> Vec<f32> {
    assert_eq!(a.shape().len(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    assert_eq!(x.len(), k, "matvec dimension mismatch");
    let ad = a.data();
    (0..m).map(|i| ad[i * k..(i + 1) * k].iter().zip(x).map(|(a, b)| a * b).sum()).collect()
}

// ---------------------------------------------------------------------------
// Allocation-free inference kernels
//
// The `_into` variants below are the inference twins of the functions above:
// identical loop structure and accumulation order (so outputs are
// bit-identical to the allocating path — the pipeline's parity pins depend
// on that), but writing into caller-owned buffers that keep their capacity
// across calls. They are what [`crate::workspace::Workspace`]-based layer
// inference runs on.
// ---------------------------------------------------------------------------

/// [`matmul`] writing into a caller-owned buffer: `out = A (m×k) * B (k×n)`,
/// all operands flat row-major slices. Bit-identical to [`matmul`]: every
/// output element accumulates `a[i][kk] * b[kk][j]` in ascending-`kk` order
/// with zero coefficients skipped, exactly like the allocating kernel. The
/// 2×4 register blocking below — two output rows sharing each streamed quad
/// of `B` rows — only changes memory traffic, never the per-element
/// addition sequence.
pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), m * k, "matmul_into lhs size mismatch");
    debug_assert_eq!(b.len(), k * n, "matmul_into rhs size mismatch");
    out.clear();
    out.resize(m * n, 0.0);
    let mut i = 0;
    // 2×4 micro-kernel: two output rows share each streamed quad of B rows,
    // quartering the read-modify-write passes over the output and halving
    // the B traffic relative to the naive i-k-j loop.
    while i + 2 <= m {
        let (head, tail) = out.split_at_mut((i + 1) * n);
        let o0 = &mut head[i * n..];
        let o1 = &mut tail[..n];
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let mut kk = 0;
        while kk + 4 <= k {
            let c0 = [a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]];
            let c1 = [a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]];
            if c0.iter().chain(&c1).all(|&c| c != 0.0) {
                let b0 = &b[kk * n..(kk + 1) * n];
                let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                for (((((o0, o1), &v0), &v1), &v2), &v3) in
                    o0.iter_mut().zip(o1.iter_mut()).zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    // Sequential += in ascending-kk order per output element:
                    // the exact rounding sequence of four separate passes.
                    let mut x = *o0;
                    x += c0[0] * v0;
                    x += c0[1] * v1;
                    x += c0[2] * v2;
                    x += c0[3] * v3;
                    *o0 = x;
                    let mut y = *o1;
                    y += c1[0] * v0;
                    y += c1[1] * v1;
                    y += c1[2] * v2;
                    y += c1[3] * v3;
                    *o1 = y;
                }
            } else {
                // A zero coefficient in the quad: fall back to the skipping
                // per-kk passes (`-0.0 + 0.0 * b` would round a -0.0
                // accumulator to +0.0, so zeros are skipped, not multiplied).
                for dk in kk..kk + 4 {
                    let b_row = &b[dk * n..(dk + 1) * n];
                    accumulate_row(o0, a0[dk], b_row);
                    accumulate_row(o1, a1[dk], b_row);
                }
            }
            kk += 4;
        }
        for dk in kk..k {
            let b_row = &b[dk * n..(dk + 1) * n];
            accumulate_row(o0, a0[dk], b_row);
            accumulate_row(o1, a1[dk], b_row);
        }
        i += 2;
    }
    // Odd trailing row: the plain skip-zero passes of `matmul`.
    if i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            accumulate_row(o_row, aik, &b[kk * n..(kk + 1) * n]);
        }
    }
}

/// One `o += coeff * b_row` pass, skipping zero coefficients (matching
/// [`matmul`]'s skip-zero semantics exactly).
#[inline]
fn accumulate_row(o_row: &mut [f32], coeff: f32, b_row: &[f32]) {
    if coeff == 0.0 {
        return;
    }
    for (o, &bv) in o_row.iter_mut().zip(b_row) {
        *o += coeff * bv;
    }
}

/// [`matvec`] writing into a caller-owned buffer. Bit-identical to
/// [`matvec`]: same per-row dot-product accumulation order.
pub fn matvec_into(a: &[f32], m: usize, k: usize, x: &[f32], out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), m * k, "matvec_into size mismatch");
    debug_assert_eq!(x.len(), k, "matvec_into dimension mismatch");
    out.clear();
    out.extend((0..m).map(|i| a[i * k..(i + 1) * k].iter().zip(x).map(|(a, b)| a * b).sum::<f32>()));
}

/// Parameters describing a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvSpec {
    /// Output spatial size for an input of `h × w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }
}

/// Unfolds an input `[C, H, W]` into a `[C*k*k, OH*OW]` matrix (im2col).
pub fn im2col(input: &Tensor, spec: &ConvSpec) -> Tensor {
    assert_eq!(input.shape().len(), 3, "im2col expects CHW input");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert_eq!(c, spec.in_channels, "im2col channel mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let k = spec.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ch * k * k + ky * k + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = data[ch * h * w + iy * w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, vec![rows, cols])
}

/// [`im2col`] writing into a caller-owned buffer. Bit-identical to
/// [`im2col`]: the buffer is zero-filled and the same cells receive the
/// same values — the stride-1 fast path below just writes each in-bounds
/// row span with one slice copy instead of a branchy per-element loop.
pub fn im2col_into(input: &[f32], h: usize, w: usize, spec: &ConvSpec, out: &mut Vec<f32>) {
    let c = spec.in_channels;
    debug_assert_eq!(input.len(), c * h * w, "im2col_into input size mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let k = spec.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    out.clear();
    out.resize(rows * cols, 0.0);
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ch * k * k + ky * k + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                if spec.stride == 1 {
                    // Stride 1: for a fixed (ky, kx) the in-bounds ox range
                    // is contiguous and maps to a contiguous input span.
                    // (Saturating: a kernel column entirely past the padded
                    // row — kx > w + padding — has no valid ox at all.)
                    let ox_lo = spec.padding.saturating_sub(kx);
                    let ox_hi = (w + spec.padding).saturating_sub(kx).min(ow);
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    for oy in 0..oh {
                        let iy = (oy + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let ix_lo = ox_lo + kx - spec.padding;
                        let src = &input[ch * h * w + iy as usize * w + ix_lo..][..ox_hi - ox_lo];
                        out_row[oy * ow + ox_lo..oy * ow + ox_hi].copy_from_slice(src);
                    }
                } else {
                    for oy in 0..oh {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out_row[oy * ow + ox] = input[ch * h * w + iy * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Folds a `[C*k*k, OH*OW]` column matrix back into a `[C, H, W]` tensor,
/// accumulating overlapping contributions (the adjoint of [`im2col`]).
pub fn col2im(cols_t: &Tensor, spec: &ConvSpec, h: usize, w: usize) -> Tensor {
    let c = spec.in_channels;
    let k = spec.kernel;
    let (oh, ow) = spec.out_size(h, w);
    let cols = oh * ow;
    assert_eq!(cols_t.shape(), &[c * k * k, cols], "col2im shape mismatch");
    let mut out = Tensor::zeros(vec![c, h, w]);
    let src = cols_t.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ch * k * k + ky * k + kx;
                let src_row = &src[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[ch * h * w + iy * w + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    out
}

/// 2-D convolution via im2col + matmul.
///
/// `input` is `[C_in, H, W]`, `weight` is `[C_out, C_in*k*k]`, `bias` is
/// `[C_out]`; the result is `[C_out, OH, OW]`. The column matrix is also
/// returned so the backward pass can reuse it.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &[f32], spec: &ConvSpec) -> (Tensor, Tensor) {
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let (oh, ow) = spec.out_size(h, w);
    let cols = im2col(input, spec);
    let mut out = matmul(weight, &cols); // [C_out, OH*OW]
    let od = out.data_mut();
    for (co, &b) in bias.iter().enumerate() {
        for v in &mut od[co * oh * ow..(co + 1) * oh * ow] {
            *v += b;
        }
    }
    (out.reshape(vec![spec.out_channels, oh, ow]), cols)
}

/// Backward pass of [`conv2d_forward`].
///
/// Returns `(grad_input, grad_weight, grad_bias)` given the upstream gradient
/// `grad_out` (`[C_out, OH, OW]`) and the cached column matrix.
pub fn conv2d_backward(
    grad_out: &Tensor,
    weight: &Tensor,
    cols: &Tensor,
    spec: &ConvSpec,
    in_h: usize,
    in_w: usize,
) -> (Tensor, Tensor, Vec<f32>) {
    let (co, oh, ow) = (grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2]);
    assert_eq!(co, spec.out_channels);
    let g2 = grad_out.reshape(vec![co, oh * ow]);
    // grad_weight = grad_out (co × ohow) * colsᵀ (ohow × ckk)
    let grad_weight = matmul_a_bt(&g2, cols);
    // grad_bias = row sums of grad_out
    let gd = g2.data();
    let grad_bias: Vec<f32> = (0..co).map(|c| gd[c * oh * ow..(c + 1) * oh * ow].iter().sum()).collect();
    // grad_cols = weightᵀ (ckk × co) * grad_out (co × ohow)
    let grad_cols = matmul_at_b(weight, &g2);
    let grad_input = col2im(&grad_cols, spec, in_h, in_w);
    (grad_input, grad_weight, grad_bias)
}

/// 2×2 (or general square) max pooling over a `CHW` tensor.
///
/// Returns the pooled tensor and the flat argmax indices used for backward.
pub fn maxpool2d_forward(input: &Tensor, size: usize) -> (Tensor, Vec<usize>) {
    assert_eq!(input.shape().len(), 3);
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert!(
        h.is_multiple_of(size) && w.is_multiple_of(size),
        "maxpool2d requires divisible spatial dims ({}x{} by {})",
        h,
        w,
        size
    );
    let (oh, ow) = (h / size, w / size);
    let mut out = Tensor::zeros(vec![c, oh, ow]);
    let mut idx = vec![0usize; c * oh * ow];
    let data = input.data();
    let od = out.data_mut();
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for dy in 0..size {
                    for dx in 0..size {
                        let i = ch * h * w + (oy * size + dy) * w + ox * size + dx;
                        if data[i] > best {
                            best = data[i];
                            best_i = i;
                        }
                    }
                }
                let o = ch * oh * ow + oy * ow + ox;
                od[o] = best;
                idx[o] = best_i;
            }
        }
    }
    (out, idx)
}

/// Inference-only [`maxpool2d_forward`]: writes the pooled values into a
/// caller-owned buffer and skips the argmax bookkeeping (only backward needs
/// it). Bit-identical pooled values — same scan order, same `>` comparison.
pub fn maxpool2d_into(input: &[f32], c: usize, h: usize, w: usize, size: usize, out: &mut Vec<f32>) {
    debug_assert_eq!(input.len(), c * h * w, "maxpool2d_into input size mismatch");
    assert!(
        h.is_multiple_of(size) && w.is_multiple_of(size),
        "maxpool2d requires divisible spatial dims ({}x{} by {})",
        h,
        w,
        size
    );
    let (oh, ow) = (h / size, w / size);
    out.clear();
    out.resize(c * oh * ow, 0.0);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for dy in 0..size {
                    for dx in 0..size {
                        let i = ch * h * w + (oy * size + dy) * w + ox * size + dx;
                        if input[i] > best {
                            best = input[i];
                        }
                    }
                }
                out[ch * oh * ow + oy * ow + ox] = best;
            }
        }
    }
}

/// Backward pass of [`maxpool2d_forward`].
pub fn maxpool2d_backward(grad_out: &Tensor, idx: &[usize], in_shape: &[usize]) -> Tensor {
    let mut grad_in = Tensor::zeros(in_shape.to_vec());
    let gi = grad_in.data_mut();
    for (o, &i) in idx.iter().enumerate() {
        gi[i] += grad_out.data()[o];
    }
    grad_in
}

/// Global average pooling of a `[C, H, W]` tensor into a `[C]` vector.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.shape().len(), 3);
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let area = (h * w) as f32;
    let data = input.data();
    let out: Vec<f32> = (0..c).map(|ch| data[ch * h * w..(ch + 1) * h * w].iter().sum::<f32>() / area).collect();
    Tensor::from_vec(out, vec![c])
}

/// [`global_avg_pool`] writing into a caller-owned buffer. Bit-identical:
/// same per-channel sum and division.
pub fn global_avg_pool_into(input: &[f32], c: usize, h: usize, w: usize, out: &mut Vec<f32>) {
    debug_assert_eq!(input.len(), c * h * w, "global_avg_pool_into input size mismatch");
    let area = (h * w) as f32;
    out.clear();
    out.extend((0..c).map(|ch| input[ch * h * w..(ch + 1) * h * w].iter().sum::<f32>() / area));
}

/// Backward pass of [`global_avg_pool`]: spreads each channel gradient evenly.
pub fn global_avg_pool_backward(grad_out: &Tensor, in_shape: &[usize]) -> Tensor {
    let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
    let area = (h * w) as f32;
    let mut grad_in = Tensor::zeros(vec![c, h, w]);
    let gi = grad_in.data_mut();
    for ch in 0..c {
        let g = grad_out.data()[ch] / area;
        for v in &mut gi[ch * h * w..(ch + 1) * h * w] {
            *v = g;
        }
    }
    grad_in
}

/// Numerically stable softmax over a flat vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|&v| (v - m).exp()).collect();
    let s: f32 = exps.iter().sum();
    exps.iter().map(|&v| v / s).collect()
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: Vec<usize>) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn matmul_small() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], vec![3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = t(vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0], vec![3, 2]);
        let reference = matmul(&a, &b);
        // A^T has shape [3,2]; matmul_at_b(Aᵀ-storage, B) should equal A*B when
        // we pass A stored transposed.
        let a_t = t(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], vec![3, 2]);
        let via_at = matmul_at_b(&a_t, &b);
        assert_eq!(via_at.data(), reference.data());
        // B^T stored as [2,3]
        let b_t = t(vec![1.0, -1.0, 0.0, 0.5, 2.0, 3.0], vec![2, 3]);
        let via_bt = matmul_a_bt(&a, &b_t);
        assert_eq!(via_bt.data(), reference.data());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let y = matvec(&a, &[5.0, 6.0]);
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let input = t((1..=9).map(|v| v as f32).collect(), vec![1, 3, 3]);
        let weight = t(vec![1.0], vec![1, 1]);
        let (out, _) = conv2d_forward(&input, &weight, &[0.0], &spec);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv_known_values() {
        // 2x2 average-ish kernel on a 3x3 input, no padding.
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 1, padding: 0 };
        let input = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], vec![1, 3, 3]);
        let weight = t(vec![1.0, 1.0, 1.0, 1.0], vec![1, 4]);
        let (out, _) = conv2d_forward(&input, &weight, &[0.0], &spec);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_padding_preserves_size() {
        let spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let input = Tensor::full(vec![2, 5, 5], 1.0);
        let weight = Tensor::full(vec![3, 2 * 9], 0.1);
        let (out, _) = conv2d_forward(&input, &weight, &[0.0; 3], &spec);
        assert_eq!(out.shape(), &[3, 5, 5]);
        // centre cell sees all 18 inputs => 1.8
        assert!((out.at3(0, 2, 2) - 1.8).abs() < 1e-5);
        // corner cell sees 8 inputs => 0.8
        assert!((out.at3(0, 0, 0) - 0.8).abs() < 1e-5);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let spec = ConvSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let x = t((0..2 * 4 * 4).map(|v| (v as f32 * 0.37).sin()).collect(), vec![2, 4, 4]);
        let cols = im2col(&x, &spec);
        let y = t((0..cols.len()).map(|v| (v as f32 * 0.11).cos()).collect(), cols.shape().to_vec());
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 4, 4);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn maxpool_forward_backward() {
        let input = t(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            vec![1, 4, 4],
        );
        let (out, idx) = maxpool2d_forward(&input, 2);
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
        let grad_out = t(vec![1.0, 2.0, 3.0, 4.0], vec![1, 2, 2]);
        let grad_in = maxpool2d_backward(&grad_out, &idx, input.shape());
        assert_eq!(grad_in.data()[5], 1.0);
        assert_eq!(grad_in.data()[7], 2.0);
        assert_eq!(grad_in.data()[13], 3.0);
        assert_eq!(grad_in.data()[15], 4.0);
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn gap_forward_backward() {
        let input = t(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], vec![2, 2, 2]);
        let out = global_avg_pool(&input);
        assert_eq!(out.data(), &[2.5, 10.0]);
        let grad = global_avg_pool_backward(&Tensor::from_vec(vec![4.0, 8.0], vec![2]), input.shape());
        assert_eq!(grad.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn into_kernels_are_bit_identical_to_allocating_twins() {
        // The inference path's parity guarantee rests on these comparisons.
        let a = t((0..6).map(|v| (v as f32 * 0.37).sin()).collect(), vec![2, 3]);
        let b = t((0..12).map(|v| (v as f32 * 0.11).cos()).collect(), vec![3, 4]);
        let reference = matmul(&a, &b);
        let mut out = vec![99.0; 1]; // stale content must be cleared
        matmul_into(a.data(), 2, 3, b.data(), 4, &mut out);
        assert_eq!(out, reference.data());

        let x = [0.3f32, -0.7, 1.2];
        let mut mv = Vec::new();
        matvec_into(a.data(), 2, 3, &x, &mut mv);
        assert_eq!(mv, matvec(&a, &x));

        let spec = ConvSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let input = t((0..2 * 4 * 4).map(|v| (v as f32 * 0.21).sin()).collect(), vec![2, 4, 4]);
        let cols_ref = im2col(&input, &spec);
        let mut cols = vec![7.0; 3];
        im2col_into(input.data(), 4, 4, &spec, &mut cols);
        assert_eq!(cols, cols_ref.data());

        let (pooled_ref, _) = maxpool2d_forward(&input, 2);
        let mut pooled = Vec::new();
        maxpool2d_into(input.data(), 2, 4, 4, 2, &mut pooled);
        assert_eq!(pooled, pooled_ref.data());

        let gap_ref = global_avg_pool(&input);
        let mut gap = Vec::new();
        global_avg_pool_into(input.data(), 2, 4, 4, &mut gap);
        assert_eq!(gap, gap_ref.data());
    }

    #[test]
    fn im2col_into_handles_kernels_wider_than_the_padded_row() {
        // kernel 8 on a 4-wide input with padding 2 is a valid spec
        // (output 1×1) whose rightmost kernel columns lie entirely past the
        // padded row: the fast path's span arithmetic must saturate, not
        // underflow.
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 8, stride: 1, padding: 2 };
        let input = t((0..16).map(|v| v as f32 + 1.0).collect(), vec![1, 4, 4]);
        let reference = im2col(&input, &spec);
        let mut cols = Vec::new();
        im2col_into(input.data(), 4, 4, &spec, &mut cols);
        assert_eq!(cols, reference.data());
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }
}
