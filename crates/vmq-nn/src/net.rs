//! Trainable parameters and the sequential network container.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// A trainable parameter: its current value and the accumulated gradient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated since the last [`Param::zero_grad`].
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters held.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter has no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A plain stack of layers executed in order.
///
/// `Sequential` is used both as a full network (for the count-only OD-COF
/// head) and as the shared trunk of the multi-head IC / OD filter networks.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Builds a sequential network from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// An empty network (identity function).
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass, caching intermediates inside each layer.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Shared-read inference over the activation already loaded into `ws`
    /// (see [`Workspace::load`]): each layer's [`Layer::infer`] runs in turn,
    /// leaving the network output in the workspace. No `&mut self`, no lock,
    /// no steady-state allocation — and bit-identical to
    /// [`Sequential::forward`].
    pub fn infer_ws(&self, ws: &mut Workspace) {
        for layer in &self.layers {
            layer.infer(ws);
        }
    }

    /// Convenience wrapper over [`Sequential::infer_ws`]: loads `input`,
    /// runs inference and copies the output out as a tensor.
    pub fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        ws.load(input);
        self.infer_ws(ws);
        ws.output()
    }

    /// Batch inference sharded across the persistent worker pool: inputs are
    /// split into one contiguous chunk per worker, each chunk runs on a pool
    /// worker's thread-local [`Workspace`], and outputs merge back by
    /// position — bit-identical to calling [`Sequential::infer`] per input,
    /// for any `workers` (including under `VMQ_NO_POOL=1`).
    pub fn infer_batch(&self, inputs: &[Tensor], workers: usize) -> Vec<Tensor> {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = workers.clamp(1, n);
        if workers == 1 {
            return crate::workspace::with_thread_workspace(|ws| inputs.iter().map(|x| self.infer(x, ws)).collect());
        }
        let chunk = n.div_ceil(workers);
        let mut out: Vec<Option<Tensor>> = vec![None; n];
        vmq_exec::scope(workers, |scope| {
            for (slots, part) in out.chunks_mut(chunk).zip(inputs.chunks(chunk)) {
                scope.spawn(move || {
                    crate::workspace::with_thread_workspace(|ws| {
                        for (slot, x) in slots.iter_mut().zip(part) {
                            *slot = Some(self.infer(x, ws));
                        }
                    });
                });
            }
        });
        out.into_iter().map(|t| t.expect("every input inferred")).collect()
    }

    /// Runs the backward pass given the gradient of the loss w.r.t. the
    /// network output, returning the gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Mutable references to every trainable parameter in layer order.
    pub fn parameters(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&mut self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Layer names, useful for describing architectures in reports.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Read-only access to the layer stack (used by structure-aware
    /// consumers such as post-training quantization, via
    /// [`Layer::as_any`]).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential{:?}", self.layer_names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Act, Activation, Dense};

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::full(vec![3], 1.0));
        p.grad = Tensor::full(vec![3], 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn sequential_forward_backward_shapes() {
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(4, 8, 0)),
            Box::new(Activation::new(Act::Relu)),
            Box::new(Dense::new(8, 2, 1)),
        ]);
        let x = Tensor::full(vec![4], 0.5);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2]);
        let gx = net.backward(&Tensor::full(vec![2], 1.0));
        assert_eq!(gx.shape(), &[4]);
        assert!(net.num_parameters() > 0);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, 0))]);
        let x = Tensor::full(vec![2], 1.0);
        let _ = net.forward(&x);
        let _ = net.backward(&Tensor::full(vec![2], 1.0));
        assert!(net.parameters().iter().any(|p| p.grad.norm() > 0.0));
        net.zero_grad();
        assert!(net.parameters().iter().all(|p| p.grad.norm() == 0.0));
    }

    /// `forward` (training) always runs the scalar reference; `infer` goes
    /// through the dispatched kernels, which on SIMD backends may differ
    /// per element within the documented ULP tolerance (bit-exact when
    /// scalar is active, e.g. under `VMQ_FORCE_SCALAR=1`). The sigmoid and
    /// the small dense head squash the conv-stack divergence, so a tight
    /// relative bound holds either way.
    #[test]
    fn infer_matches_forward_within_kernel_tolerance_and_reuses_buffers() {
        use crate::layer::{Conv2d, Flatten, GlobalAvgPool, MaxPool2d};
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::same(2, 4, 3)),
            Box::new(Activation::new(Act::LeakyRelu(0.1))),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(4, 3, 1, 1, 0, 9)),
            Box::new(Activation::new(Act::Sigmoid)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(3, 2, 4)),
            Box::new(Activation::new(Act::Relu)),
        ]);
        let mut ws = crate::workspace::Workspace::new();
        for seed in 0..4 {
            let x = Tensor::from_vec(
                (0..2 * 8 * 8).map(|v| ((v + seed * 131) as f32 * 0.173).sin()).collect(),
                vec![2, 8, 8],
            );
            let reference = net.forward(&x);
            // The same workspace serves every pass (buffer reuse must not
            // leak stale state between frames).
            let inferred = net.infer(&x, &mut ws);
            assert_eq!(inferred.shape(), reference.shape());
            if !crate::kernels::KernelBackend::active().is_simd() {
                assert_eq!(inferred.data(), reference.data(), "scalar infer must be bit-identical to forward");
            } else {
                for (got, want) in inferred.data().iter().zip(reference.data()) {
                    assert!(
                        (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                        "infer {got} vs forward {want} beyond kernel tolerance"
                    );
                }
            }
        }
    }

    #[test]
    fn infer_runs_without_mut_across_threads() {
        let net = Sequential::new(vec![Box::new(Dense::new(2, 2, 0)), Box::new(Activation::new(Act::Relu))]);
        let x = Tensor::from_vec(vec![0.5, -0.25], vec![2]);
        let net_ref = &net;
        let x = &x;
        // The shared-read contract, exercised on the persistent pool.
        let outputs: Vec<Tensor> = {
            let mut out: Vec<Option<Tensor>> = vec![None; 4];
            vmq_exec::scope(4, |scope| {
                for slot in out.iter_mut() {
                    scope.spawn(move || {
                        *slot = Some(crate::workspace::with_thread_workspace(|ws| net_ref.infer(x, ws)));
                    });
                }
            });
            out.into_iter().map(|t| t.unwrap()).collect()
        };
        for out in &outputs[1..] {
            assert_eq!(out.data(), outputs[0].data());
        }
    }

    #[test]
    fn infer_batch_matches_per_input_infer_for_any_worker_count() {
        let net = Sequential::new(vec![
            Box::new(Dense::new(6, 5, 3)),
            Box::new(Activation::new(Act::Tanh)),
            Box::new(Dense::new(5, 2, 7)),
        ]);
        for batch in [1usize, 7, 32] {
            let inputs: Vec<Tensor> = (0..batch)
                .map(|i| Tensor::from_vec((0..6).map(|v| ((v + i * 13) as f32 * 0.31).cos()).collect(), vec![6]))
                .collect();
            let mut ws = crate::workspace::Workspace::new();
            let reference: Vec<Tensor> = inputs.iter().map(|x| net.infer(x, &mut ws)).collect();
            for workers in [1usize, 2, 4] {
                let got = net.infer_batch(&inputs, workers);
                assert_eq!(got.len(), reference.len());
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(g.data(), r.data(), "batch={batch} workers={workers}");
                }
            }
        }
    }

    #[test]
    fn layer_names_reported() {
        let net = Sequential::new(vec![Box::new(Dense::new(1, 1, 0)), Box::new(Activation::new(Act::Relu))]);
        assert_eq!(net.layer_names(), vec!["Dense", "Activation"]);
    }
}
