//! Trainable parameters and the sequential network container.

use crate::layer::Layer;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: its current value and the accumulated gradient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated since the last [`Param::zero_grad`].
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters held.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter has no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A plain stack of layers executed in order.
///
/// `Sequential` is used both as a full network (for the count-only OD-COF
/// head) and as the shared trunk of the multi-head IC / OD filter networks.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Builds a sequential network from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// An empty network (identity function).
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass, caching intermediates inside each layer.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Runs the backward pass given the gradient of the loss w.r.t. the
    /// network output, returning the gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Mutable references to every trainable parameter in layer order.
    pub fn parameters(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&mut self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Layer names, useful for describing architectures in reports.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential{:?}", self.layer_names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Act, Activation, Dense};

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::full(vec![3], 1.0));
        p.grad = Tensor::full(vec![3], 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn sequential_forward_backward_shapes() {
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(4, 8, 0)),
            Box::new(Activation::new(Act::Relu)),
            Box::new(Dense::new(8, 2, 1)),
        ]);
        let x = Tensor::full(vec![4], 0.5);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2]);
        let gx = net.backward(&Tensor::full(vec![2], 1.0));
        assert_eq!(gx.shape(), &[4]);
        assert!(net.num_parameters() > 0);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, 0))]);
        let x = Tensor::full(vec![2], 1.0);
        let _ = net.forward(&x);
        let _ = net.backward(&Tensor::full(vec![2], 1.0));
        assert!(net.parameters().iter().any(|p| p.grad.norm() > 0.0));
        net.zero_grad();
        assert!(net.parameters().iter().all(|p| p.grad.norm() == 0.0));
    }

    #[test]
    fn layer_names_reported() {
        let net = Sequential::new(vec![Box::new(Dense::new(1, 1, 0)), Box::new(Activation::new(Act::Relu))]);
        assert_eq!(net.layer_names(), vec!["Dense", "Activation"]);
    }
}
