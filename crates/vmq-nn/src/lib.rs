//! # vmq-nn — minimal CPU neural-network substrate for Video Monitoring Queries
//!
//! This crate implements the small amount of deep-learning machinery the
//! paper's filters need, from scratch and on the CPU:
//!
//! * a dense [`Tensor`] type with shape tracking ([`tensor`]),
//! * the numeric kernels (matmul, im2col convolution, pooling) ([`ops`]),
//!   with runtime-dispatched SIMD variants behind [`kernels`] and an int8
//!   post-training-quantized inference mode in [`quant`],
//! * layer types with explicit forward/backward passes ([`layer`]),
//! * the losses used by the paper — SmoothL1 for counts, MSE for class
//!   activation maps, and the masked grid loss of Eq. 3 ([`loss`]),
//! * SGD-with-momentum and Adam optimisers ([`optim`]),
//! * a sequential network container plus the multi-head filter networks'
//!   plumbing ([`net`]) and a generic mini-batch training loop ([`train`]).
//!
//! The design intentionally avoids a general autograd graph: every layer
//! caches what it needs during `forward` and produces input gradients during
//! `backward`, which keeps the implementation small, predictable and easy to
//! test with finite differences.
//!
//! ## Example
//!
//! ```
//! use vmq_nn::{layer::Dense, net::Sequential, tensor::Tensor};
//! use vmq_nn::optim::{Adam, Optimizer};
//! use vmq_nn::loss::mse_loss;
//!
//! // Learn y = 2x with a single linear layer on two training points.
//! let mut net = Sequential::new(vec![Box::new(Dense::new(1, 1, 7))]);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..300 {
//!     for &(x, y) in &[(1.5f32, 3.0f32), (-1.0, -2.0)] {
//!         let out = net.forward(&Tensor::from_vec(vec![x], vec![1]));
//!         let (_loss, grad) = mse_loss(&out, &Tensor::from_vec(vec![y], vec![1]));
//!         net.backward(&grad);
//!         opt.step(&mut net.parameters());
//!         net.zero_grad();
//!     }
//! }
//! let out = net.forward(&Tensor::from_vec(vec![2.0], vec![1]));
//! assert!((out.data()[0] - 4.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]
// Unsafe code is denied crate-wide; the only exceptions are the scoped
// `#[allow(unsafe_code)]` SIMD modules inside [`kernels`] and [`quant`],
// which need `std::arch` intrinsics (see the equivalence contract there).
#![deny(unsafe_code)]

pub mod init;
pub mod kernels;
pub mod layer;
pub mod loss;
pub mod net;
pub mod ops;
pub mod optim;
pub mod quant;
pub mod tensor;
pub mod train;
pub mod workspace;

pub use kernels::KernelBackend;
pub use layer::{Act, Activation, Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d};
pub use net::{Param, Sequential};
pub use optim::{Adam, Optimizer, Sgd};
pub use quant::QuantizedSequential;
pub use tensor::Tensor;
pub use workspace::{scratch_growth_events, with_thread_workspace, Workspace};
