//! Int8 post-training quantization of trained [`Sequential`] networks.
//!
//! The scheme is the standard symmetric one production inference stacks
//! use:
//!
//! * **Weights** are quantized per output channel: each row of a conv /
//!   dense weight matrix gets its own scale `s_w = max|w| / 127` and is
//!   rounded to `i8` in `[-127, 127]` (the `-128` code is unused so the
//!   range stays symmetric).
//! * **Activations** are quantized per layer with a scale calibrated from
//!   representative inputs (the pipeline's existing calibration prefix):
//!   `s_x = max|x| / 127` over every input the layer saw during
//!   [`QuantizedSequential::quantize`].
//! * **Accumulation is exact**: `i8 × i8` products are summed in `i32`,
//!   which cannot overflow for any layer shape this crate builds (see the
//!   `accumulator_headroom` test — even a 4096-long worst-case dot product
//!   stays ~8× under `i32::MAX`), and integer addition is associative, so
//!   the result is identical for *any* loop order, SIMD width, batch size
//!   or worker split. The int8 path therefore needs no ULP-tolerance
//!   story: it is deterministic and bit-stable by construction, just
//!   *different* from the f32 reference (that difference is what the
//!   planner's per-backend recall calibration prices).
//! * **Requantize / dequantize**: each output element is
//!   `acc · s_w[o] · s_x + bias[o]`, returning to f32 between layers —
//!   pools, activations and heads run in f32 exactly like the reference
//!   net, so only the matmul-shaped work changes representation.
//!
//! The int8 GEMM dispatches like [`crate::kernels`]: an AVX-512 kernel
//! (32 codes per `pmaddwd` step) when `avx512bw` is available, an AVX2
//! kernel otherwise, a scalar loop as the portable floor — all exact, with
//! `VMQ_FORCE_SCALAR=1` pinning scalar. Every backend produces identical
//! `i32` accumulators.

use crate::kernels::KernelBackend;
use crate::layer::{Act, Activation, Conv2d, Dense, Flatten, GlobalAvgPool, MaxPool2d};
use crate::net::Sequential;
use crate::ops::ConvSpec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Largest magnitude an i8 code may take (symmetric range, `-128` unused).
pub const Q_MAX: f32 = 127.0;

/// One quantized weight matrix with its per-channel scales and f32 bias.
#[derive(Debug, Clone)]
struct QuantLinear {
    /// `[out_dim, k]` row-major i8 weights.
    weight_q: Vec<i8>,
    /// Per-output-channel weight scale (`max|w_row| / 127`).
    w_scale: Vec<f32>,
    /// f32 bias, added after dequantization.
    bias: Vec<f32>,
    out_dim: usize,
    k: usize,
    /// Calibrated activation scale for this layer's input.
    x_scale: f32,
    /// Precomputed `1 / x_scale` for the quantize step.
    inv_x_scale: f32,
}

impl QuantLinear {
    fn new(weight: &Tensor, bias: &Tensor, act_max_abs: f32) -> QuantLinear {
        let (out_dim, k) = (weight.shape()[0], weight.shape()[1]);
        let wd = weight.data();
        let mut weight_q = vec![0i8; out_dim * k];
        let mut w_scale = vec![1.0f32; out_dim];
        for o in 0..out_dim {
            let row = &wd[o * k..(o + 1) * k];
            let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max > 0.0 { max / Q_MAX } else { 1.0 };
            w_scale[o] = scale;
            for (q, &v) in weight_q[o * k..(o + 1) * k].iter_mut().zip(row) {
                *q = (v / scale).round().clamp(-Q_MAX, Q_MAX) as i8;
            }
        }
        let x_scale = if act_max_abs > 0.0 { act_max_abs / Q_MAX } else { 1.0 };
        QuantLinear { weight_q, w_scale, bias: bias.data().to_vec(), out_dim, k, x_scale, inv_x_scale: 1.0 / x_scale }
    }

    /// Dequantizes `acc` (`[out_dim, n]`) into `out` with bias.
    fn dequantize_into(&self, acc: &[i32], n: usize, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.out_dim * n, 0.0);
        for o in 0..self.out_dim {
            let s = self.w_scale[o] * self.x_scale;
            let b = self.bias[o];
            for (dst, &a) in out[o * n..(o + 1) * n].iter_mut().zip(&acc[o * n..(o + 1) * n]) {
                *dst = a as f32 * s + b;
            }
        }
    }
}

/// One layer of a quantized network.
#[derive(Debug, Clone)]
enum QLayer {
    Conv { spec: ConvSpec, lin: QuantLinear },
    Dense { lin: QuantLinear },
    MaxPool { size: usize },
    GlobalAvgPool,
    Act(Act),
    Flatten,
}

/// An int8-quantized twin of a trained [`Sequential`] network.
///
/// Built once from the trained f32 net plus calibration inputs; inference
/// then runs conv / dense layers in int8 with exact i32 accumulation and
/// everything else in f32, through the same [`Workspace`] protocol as the
/// reference net (so it shards across worker threads identically).
#[derive(Debug, Clone)]
pub struct QuantizedSequential {
    layers: Vec<QLayer>,
}

impl QuantizedSequential {
    /// Quantizes a trained network, calibrating each conv / dense layer's
    /// activation scale as the max-abs input it sees over `calib`.
    ///
    /// Calibration runs the *f32* layers (the standard post-training
    /// approximation: later layers are calibrated on exact inputs rather
    /// than the quantized net's slightly-perturbed ones). An empty `calib`
    /// falls back to unit activation scales — legal but poorly scaled, so
    /// callers should always pass a representative prefix.
    ///
    /// # Panics
    /// If the network contains a layer type this module cannot quantize.
    pub fn quantize(net: &Sequential, calib: &[Tensor]) -> QuantizedSequential {
        let layers = net.layers();
        let mut max_abs = vec![0.0f32; layers.len()];
        let mut ws = Workspace::new();
        for input in calib {
            ws.load(input);
            for (i, layer) in layers.iter().enumerate() {
                let any = layer.as_any();
                if any.is::<Conv2d>() || any.is::<Dense>() {
                    max_abs[i] = ws.data().iter().fold(max_abs[i], |m, &v| m.max(v.abs()));
                }
                layer.infer(&mut ws);
            }
        }
        let qlayers = layers
            .iter()
            .zip(&max_abs)
            .map(|(layer, &act_max)| {
                let any = layer.as_any();
                if let Some(conv) = any.downcast_ref::<Conv2d>() {
                    QLayer::Conv { spec: *conv.spec(), lin: QuantLinear::new(conv.weight(), conv.bias(), act_max) }
                } else if let Some(dense) = any.downcast_ref::<Dense>() {
                    QLayer::Dense { lin: QuantLinear::new(dense.weight(), dense.bias(), act_max) }
                } else if let Some(pool) = any.downcast_ref::<MaxPool2d>() {
                    QLayer::MaxPool { size: pool.size() }
                } else if any.is::<GlobalAvgPool>() {
                    QLayer::GlobalAvgPool
                } else if let Some(act) = any.downcast_ref::<Activation>() {
                    QLayer::Act(act.act())
                } else if any.is::<Flatten>() {
                    QLayer::Flatten
                } else {
                    panic!("cannot quantize layer type {}", layer.name());
                }
            })
            .collect();
        QuantizedSequential { layers: qlayers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Quantized inference over the activation already loaded into `ws`,
    /// mirroring [`Sequential::infer_ws`]: `&self` only, allocation-free
    /// in steady state, output left in the workspace.
    pub fn infer_ws(&self, ws: &mut Workspace) {
        for layer in &self.layers {
            match layer {
                QLayer::Conv { spec, lin } => {
                    debug_assert_eq!(ws.shape().len(), 3, "quantized Conv2d expects CHW input");
                    let (h, w) = (ws.shape()[1], ws.shape()[2]);
                    let (oh, ow) = spec.out_size(h, w);
                    let n = oh * ow;
                    {
                        let (input, out, q_act, q_cols, q_acc) = ws.split_quant();
                        quantize_i8(input, lin.inv_x_scale, q_act);
                        im2row_i8(q_act, h, w, spec, q_cols);
                        i8_gemm(&lin.weight_q, lin.out_dim, lin.k, q_cols, n, q_acc);
                        lin.dequantize_into(q_acc, n, out);
                    }
                    ws.commit(&[spec.out_channels, oh, ow]);
                }
                QLayer::Dense { lin } => {
                    debug_assert_eq!(ws.data().len(), lin.k, "quantized Dense input length mismatch");
                    {
                        let (input, out, q_act, _q_cols, q_acc) = ws.split_quant();
                        quantize_i8(input, lin.inv_x_scale, q_act);
                        i8_gemm(&lin.weight_q, lin.out_dim, lin.k, q_act, 1, q_acc);
                        lin.dequantize_into(q_acc, 1, out);
                    }
                    ws.commit(&[lin.out_dim]);
                }
                QLayer::MaxPool { size } => {
                    let (c, h, w) = (ws.shape()[0], ws.shape()[1], ws.shape()[2]);
                    {
                        let (input, out, cols) = ws.split();
                        let _ = cols;
                        crate::kernels::maxpool2d_into(input, c, h, w, *size, out);
                    }
                    ws.commit(&[c, h / size, w / size]);
                }
                QLayer::GlobalAvgPool => {
                    let (c, h, w) = (ws.shape()[0], ws.shape()[1], ws.shape()[2]);
                    {
                        let (input, out, cols) = ws.split();
                        let _ = cols;
                        crate::kernels::global_avg_pool_into(input, c, h, w, out);
                    }
                    ws.commit(&[c]);
                }
                QLayer::Act(act) => {
                    act.apply_slice(ws.data_mut());
                }
                QLayer::Flatten => {
                    ws.set_shape(&[ws.data().len()]);
                }
            }
        }
    }

    /// Convenience wrapper: loads `input`, runs quantized inference and
    /// copies the output out as a tensor.
    pub fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        ws.load(input);
        self.infer_ws(ws);
        ws.output()
    }
}

/// Quantizes an f32 slice to symmetric i8 codes: `round(x · inv_scale)`
/// clamped to `[-127, 127]`.
pub fn quantize_i8(src: &[f32], inv_scale: f32, out: &mut Vec<i8>) {
    out.clear();
    out.extend(src.iter().map(|&x| (x * inv_scale).round().clamp(-Q_MAX, Q_MAX) as i8));
}

/// Unfolds a quantized `[C, H, W]` input into patch-major (im2row) layout:
/// `out[p·K + r]` holds kernel element `r = ch·k² + ky·k + kx` of output
/// pixel `p`, with zero padding. Patch-major puts each output pixel's
/// receptive field contiguous in memory, which is what the int8 GEMM's
/// dot-product kernels want.
pub fn im2row_i8(input: &[i8], h: usize, w: usize, spec: &ConvSpec, out: &mut Vec<i8>) {
    let c = spec.in_channels;
    debug_assert_eq!(input.len(), c * h * w, "im2row_i8 input size mismatch");
    let k = spec.kernel;
    let (oh, ow) = spec.out_size(h, w);
    let kdim = c * k * k;
    out.clear();
    out.resize(oh * ow * kdim, 0);
    for oy in 0..oh {
        for ox in 0..ow {
            let patch = &mut out[(oy * ow + ox) * kdim..(oy * ow + ox + 1) * kdim];
            for ch in 0..c {
                for ky in 0..k {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let row = &input[ch * h * w + iy as usize * w..][..w];
                    for kx in 0..k {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        patch[ch * k * k + ky * k + kx] = row[ix as usize];
                    }
                }
            }
        }
    }
}

/// `out[o·n + j] = Σ_r w[o·k + r] · xt[j·k + r]` over i8 operands with
/// exact i32 accumulation, through the process-wide active backend.
/// Integer accumulation is exact, so every backend returns identical
/// results (unlike the f32 kernels there is nothing to tolerate).
pub fn i8_gemm(w: &[i8], m: usize, k: usize, xt: &[i8], n: usize, out: &mut Vec<i32>) {
    i8_gemm_with(KernelBackend::active(), w, m, k, xt, n, out);
}

/// [`i8_gemm`] with an explicit backend (for benches and parity tests).
#[allow(unsafe_code)]
pub fn i8_gemm_with(backend: KernelBackend, w: &[i8], m: usize, k: usize, xt: &[i8], n: usize, out: &mut Vec<i32>) {
    debug_assert_eq!(w.len(), m * k, "i8_gemm weight size mismatch");
    debug_assert_eq!(xt.len(), n * k, "i8_gemm rhs size mismatch");
    out.clear();
    out.resize(m * n, 0);
    match backend {
        // AVX-512 widens the same pmaddwd scheme to 32 codes per step;
        // integer accumulation stays exact, so the i32 results are
        // identical across all backends. Falls back to the AVX2 dot when
        // the host lacks AVX512BW (zmm pmaddwd lives there).
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 if backend.is_supported() && std::arch::is_x86_feature_detected!("avx512bw") => {
            for o in 0..m {
                let w_row = &w[o * k..(o + 1) * k];
                let o_row = &mut out[o * n..(o + 1) * n];
                for (j, dst) in o_row.iter_mut().enumerate() {
                    // SAFETY: the arm guard confirmed AVX-512F and
                    // AVX512BW at runtime, satisfying the callee's
                    // `target_feature` contract; both rows are `k` codes.
                    *dst = unsafe { avx512::dot_i8(w_row, &xt[j * k..(j + 1) * k]) };
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 | KernelBackend::Avx512 if backend.is_supported() => {
            for o in 0..m {
                let w_row = &w[o * k..(o + 1) * k];
                let o_row = &mut out[o * n..(o + 1) * n];
                for (j, dst) in o_row.iter_mut().enumerate() {
                    // SAFETY: the arm guard confirmed AVX2 at runtime (the
                    // callee's `target_feature` requirement); both rows
                    // are `k` codes.
                    *dst = unsafe { avx2::dot_i8(w_row, &xt[j * k..(j + 1) * k]) };
                }
            }
        }
        _ => {
            for o in 0..m {
                let w_row = &w[o * k..(o + 1) * k];
                let o_row = &mut out[o * n..(o + 1) * n];
                for (j, dst) in o_row.iter_mut().enumerate() {
                    *dst = dot_i8_scalar(w_row, &xt[j * k..(j + 1) * k]);
                }
            }
        }
    }
}

fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::*;

    // Exactness: codes are in [-127, 127], so each i16 product is at most
    // 16129 and `pmaddwd`'s pairwise i32 sums cannot overflow; the i32
    // lane accumulators are exact integers throughout.
    //
    // SAFETY: caller must guarantee AVX2 (dispatch checks
    // `is_supported()`); loads stay inside `a`/`b` — the vector loop runs
    // only while 16 full lanes remain, with a scalar tail.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256::<1>(acc);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01_00_11_10>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        let mut sum = _mm_cvtsi128_si32(s);
        while i < n {
            sum += *ap.add(i) as i32 * *bp.add(i) as i32;
            i += 1;
        }
        sum
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx512 {
    use std::arch::x86_64::*;

    // Exactness: identical argument to the AVX2 dot — products of codes in
    // [-127, 127] cannot overflow `pmaddwd`'s pairwise i32 sums, so the
    // accumulators are exact and every backend returns the same i32.
    //
    // SAFETY: caller must guarantee AVX-512F+BW (the dispatch arm checks
    // both); loads stay inside `a`/`b` — the vector loop runs only while
    // 32 full lanes remain, with a scalar tail.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 32 <= n {
            let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(ap.add(i) as *const __m256i));
            let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(bp.add(i) as *const __m256i));
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, vb));
            i += 32;
        }
        let mut sum = _mm512_reduce_add_epi32(acc);
        while i < n {
            sum += *ap.add(i) as i32 * *bp.add(i) as i32;
            i += 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Act, Activation, Conv2d, Dense, Flatten, GlobalAvgPool, MaxPool2d};

    #[test]
    fn quantize_dequantize_round_trip_error_is_bounded() {
        // Symmetric per-channel quantization guarantees per-element error
        // of at most half a quantization step: |w − q·s| ≤ s/2 with
        // s = max|row| / 127.
        let weight = Tensor::from_vec((0..4 * 33).map(|v| (v as f32 * 0.377).sin() * 2.5).collect(), vec![4, 33]);
        let bias = Tensor::zeros(vec![4]);
        let lin = QuantLinear::new(&weight, &bias, 1.0);
        for o in 0..4 {
            let row = &weight.data()[o * 33..(o + 1) * 33];
            let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let step = max / Q_MAX;
            assert!((lin.w_scale[o] - step).abs() <= f32::EPSILON * max, "scale should be max/127");
            for (r, (&w, &q)) in row.iter().zip(&lin.weight_q[o * 33..(o + 1) * 33]).enumerate() {
                let err = (w - q as f32 * lin.w_scale[o]).abs();
                assert!(err <= 0.5 * lin.w_scale[o] * 1.0001, "row {o} elem {r}: err {err} > step/2 {}", step / 2.0);
            }
        }
    }

    #[test]
    fn zero_rows_and_empty_calibration_use_unit_scales() {
        let weight = Tensor::zeros(vec![2, 5]);
        let bias = Tensor::zeros(vec![2]);
        let lin = QuantLinear::new(&weight, &bias, 0.0);
        assert_eq!(lin.w_scale, vec![1.0, 1.0]);
        assert_eq!(lin.x_scale, 1.0);
        assert!(lin.weight_q.iter().all(|&q| q == 0));
    }

    #[test]
    fn accumulator_headroom_on_largest_shapes() {
        // The deepest dot product any vmq network performs is well under
        // 4096 elements (conv K = in_ch·k² ≤ 144; the widest dense flatten
        // is a few thousand). Even at 4096 the worst-case |acc| is
        // 4096 · 127² ≈ 6.6e7 — ~32× under i32::MAX — so i32 accumulation
        // can never overflow. Verify against an i64 reference on the
        // adversarial all-max input.
        let k = 4096usize;
        let a: Vec<i8> = (0..k).map(|i| if i % 2 == 0 { 127 } else { -127 }).collect();
        let b: Vec<i8> = (0..k).map(|i| if i % 3 == 0 { -127 } else { 127 }).collect();
        let exact: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert!(exact.unsigned_abs() < i32::MAX as u64, "worst case must fit i32");
        let mut out = Vec::new();
        for backend in KernelBackend::supported() {
            i8_gemm_with(backend, &a, 1, k, &b, 1, &mut out);
            assert_eq!(out[0] as i64, exact, "backend {}", backend.name());
        }
    }

    #[test]
    fn i8_gemm_backends_agree_exactly() {
        let m = 5;
        let k = 37;
        let n = 11;
        let w: Vec<i8> = (0..m * k).map(|v| ((v * 37 + 11) % 255) as i8).collect();
        let xt: Vec<i8> = (0..n * k).map(|v| ((v * 91 + 5) % 251) as i8).collect();
        let mut reference = Vec::new();
        i8_gemm_with(KernelBackend::Scalar, &w, m, k, &xt, n, &mut reference);
        for backend in KernelBackend::supported() {
            let mut out = Vec::new();
            i8_gemm_with(backend, &w, m, k, &xt, n, &mut out);
            assert_eq!(out, reference, "backend {}", backend.name());
        }
    }

    #[test]
    fn im2row_matches_im2col_transposed() {
        let spec = ConvSpec { in_channels: 2, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let input_f: Vec<f32> = (0..2 * 4 * 4).map(|v| ((v % 13) - 6) as f32).collect();
        let input_q: Vec<i8> = input_f.iter().map(|&v| v as i8).collect();
        let mut cols = Vec::new();
        crate::ops::im2col_into(&input_f, 4, 4, &spec, &mut cols);
        let mut rows = Vec::new();
        im2row_i8(&input_q, 4, 4, &spec, &mut rows);
        let kdim = 2 * 9;
        let n = 16;
        for r in 0..kdim {
            for j in 0..n {
                assert_eq!(rows[j * kdim + r] as f32, cols[r * n + j], "element ({r},{j})");
            }
        }
    }

    #[test]
    fn quantized_net_tracks_f32_reference_closely() {
        // End-to-end: a conv net with the trunk's layer mix, quantized on a
        // calibration set, must stay close to the f32 net on held-out
        // inputs (int8 with per-channel scales is typically ≲1% off).
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::same(2, 8, 3)),
            Box::new(Activation::new(Act::LeakyRelu(0.1))),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::same(8, 8, 5)),
            Box::new(Activation::new(Act::Relu)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(8, 3, 7)),
        ]);
        let calib: Vec<Tensor> = (0..4)
            .map(|s| {
                Tensor::from_vec((0..2 * 8 * 8).map(|v| ((v + s * 57) as f32 * 0.173).sin()).collect(), vec![2, 8, 8])
            })
            .collect();
        let qnet = QuantizedSequential::quantize(&net, &calib);
        assert_eq!(qnet.len(), 8);
        assert!(!qnet.is_empty());
        let mut ws = Workspace::new();
        for s in 10..14 {
            let x =
                Tensor::from_vec((0..2 * 8 * 8).map(|v| ((v + s * 31) as f32 * 0.211).sin()).collect(), vec![2, 8, 8]);
            let reference = net.forward(&x);
            let quantized = qnet.infer(&x, &mut ws);
            assert_eq!(quantized.shape(), reference.shape());
            let ref_scale = reference.data().iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-3);
            for (q, r) in quantized.data().iter().zip(reference.data()) {
                assert!(
                    (q - r).abs() <= 0.1 * ref_scale,
                    "quantized {q} strays from reference {r} (scale {ref_scale})"
                );
            }
        }
    }

    #[test]
    fn quantized_inference_is_deterministic_across_workspaces() {
        // Exact integer accumulation: two fresh workspaces (and thus any
        // batch/worker split) produce bitwise identical outputs.
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::same(1, 4, 11)),
            Box::new(Activation::new(Act::Relu)),
            Box::new(GlobalAvgPool::new()),
        ]);
        let calib = vec![Tensor::from_vec((0..36).map(|v| (v as f32 * 0.37).cos()).collect(), vec![1, 6, 6])];
        let _ = net.forward(&calib[0]);
        let qnet = QuantizedSequential::quantize(&net, &calib);
        let x = Tensor::from_vec((0..36).map(|v| (v as f32 * 0.59).sin()).collect(), vec![1, 6, 6]);
        let a = qnet.infer(&x, &mut Workspace::new());
        let mut ws = Workspace::new();
        let _warm = qnet.infer(&calib[0], &mut ws);
        let b = qnet.infer(&x, &mut ws);
        assert_eq!(
            a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
