//! Neural-network layers with explicit forward / backward passes.
//!
//! Every layer caches whatever it needs from the forward pass (inputs, column
//! matrices, pooling indices) so the subsequent backward call can compute
//! parameter and input gradients without a general autograd graph.

mod activation;
mod conv;
mod dense;
mod pool;

pub use activation::{Act, Activation};
pub use conv::Conv2d;
pub use dense::Dense;
pub use pool::{GlobalAvgPool, MaxPool2d};

use crate::net::Param;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A differentiable layer.
///
/// `forward` must be called before `backward`; layers are stateful and keep
/// the activations of the most recent forward pass. Layers are `Send + Sync`
/// so trained networks can be moved into the streaming executor's worker
/// threads — and, through the shared-read [`Layer::infer`] path, serve many
/// inference threads concurrently without a lock.
pub trait Layer: Send + Sync {
    /// Computes the layer output for `input`, caching anything needed by
    /// [`Layer::backward`].
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Inference-only forward pass: reads the current activation from `ws`
    /// and leaves the layer output there, using only the workspace's
    /// caller-owned scratch buffers — no `&mut self` (so a trained net can
    /// be shared across threads) and no heap allocation in steady state.
    ///
    /// Must be bit-identical to [`Layer::forward`]; the filter pipeline's
    /// eager/batched/sharded parity guarantees depend on it.
    fn infer(&self, ws: &mut Workspace);

    /// Given the gradient of the loss w.r.t. the layer output, accumulates
    /// parameter gradients and returns the gradient w.r.t. the layer input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable references to the layer's trainable parameters (empty for
    /// parameter-free layers).
    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Short layer name for architecture summaries.
    fn name(&self) -> &'static str;

    /// The layer as [`std::any::Any`], so structure-aware consumers (e.g.
    /// post-training quantization in [`crate::quant`]) can downcast a boxed
    /// `dyn Layer` back to its concrete type.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Reshapes any tensor into a flat vector (and restores the shape on backward).
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { in_shape: Vec::new() }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.in_shape = input.shape().to_vec();
        input.reshape(vec![input.len()])
    }

    fn infer(&self, ws: &mut Workspace) {
        ws.set_shape(&[ws.data().len()]);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(self.in_shape.clone())
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), vec![3, 2, 2]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[12]);
        let gx = f.backward(&y);
        assert_eq!(gx.shape(), &[3, 2, 2]);
        assert_eq!(gx.data(), x.data());
        assert_eq!(f.name(), "Flatten");
    }
}
