//! Fully-connected (dense) layer.

use crate::init::{kaiming_uniform, seeded_rng};
use crate::kernels::matvec_into;
use crate::layer::Layer;
use crate::net::Param;
use crate::ops::matvec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A fully-connected layer `y = W x + b` over flat vectors.
///
/// Weights are stored as an `[out, in]` matrix. The layer operates on a single
/// sample at a time (mini-batching is done by the training loop, which
/// accumulates gradients over repeated forward/backward calls).
pub struct Dense {
    weight: Param,
    bias: Param,
    in_dim: usize,
    out_dim: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform weights seeded by `seed`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let weight = Param::new(kaiming_uniform(vec![out_dim, in_dim], in_dim, &mut rng));
        let bias = Param::new(Tensor::zeros(vec![out_dim]));
        Dense { weight, bias, in_dim, out_dim, cached_input: None }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Read-only access to the weight matrix (used by the CAM head, which
    /// shares the count head's weights as per Eq. 1 of the paper).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Read-only access to the bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.len(), self.in_dim, "Dense expected input of length {}, got {:?}", self.in_dim, input.shape());
        self.cached_input = Some(input.reshape(vec![self.in_dim]));
        let mut y = matvec(&self.weight.value, input.data());
        for (v, b) in y.iter_mut().zip(self.bias.value.data()) {
            *v += b;
        }
        Tensor::from_vec(y, vec![self.out_dim])
    }

    fn infer(&self, ws: &mut Workspace) {
        debug_assert_eq!(ws.data().len(), self.in_dim, "Dense input length mismatch");
        {
            let (input, out, _cols) = ws.split();
            matvec_into(self.weight.value.data(), self.out_dim, self.in_dim, input, out);
            for (v, b) in out.iter_mut().zip(self.bias.value.data()) {
                *v += b;
            }
        }
        ws.commit(&[self.out_dim]);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.out_dim);
        let input = self.cached_input.as_ref().expect("Dense::backward called before forward");
        // dW[o][i] += g[o] * x[i]
        let gw = self.weight.grad.data_mut();
        for (o, &g) in grad_out.data().iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &mut gw[o * self.in_dim..(o + 1) * self.in_dim];
            for (w, &x) in row.iter_mut().zip(input.data()) {
                *w += g * x;
            }
        }
        // db += g
        self.bias.grad.add_scaled(grad_out, 1.0);
        // dx[i] = sum_o g[o] * W[o][i]
        let wd = self.weight.value.data();
        let mut gx = vec![0.0f32; self.in_dim];
        for (o, &g) in grad_out.data().iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &wd[o * self.in_dim..(o + 1) * self.in_dim];
            for (x, &w) in gx.iter_mut().zip(row) {
                *x += g * w;
            }
        }
        Tensor::from_vec(gx, vec![self.in_dim])
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut d = Dense::new(2, 2, 0);
        // overwrite with known weights
        d.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        d.bias.value = Tensor::from_vec(vec![0.5, -0.5], vec![2]);
        let y = d.forward(&Tensor::from_vec(vec![1.0, 1.0], vec![2]));
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn gradient_check_weights() {
        // finite-difference check of dL/dW for L = sum(y)
        let mut d = Dense::new(3, 2, 1);
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2], vec![3]);
        let _ = d.forward(&x);
        let _ = d.backward(&Tensor::full(vec![2], 1.0));
        let analytic = d.weight.grad.clone();
        let eps = 1e-3;
        for idx in 0..d.weight.value.len() {
            let orig = d.weight.value.data()[idx];
            d.weight.value.data_mut()[idx] = orig + eps;
            let lp = d.forward(&x).sum();
            d.weight.value.data_mut()[idx] = orig - eps;
            let lm = d.forward(&x).sum();
            d.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - analytic.data()[idx]).abs() < 1e-2, "idx {idx}: {numeric} vs {}", analytic.data()[idx]);
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut d = Dense::new(3, 2, 2);
        let x = Tensor::from_vec(vec![0.1, 0.2, -0.3], vec![3]);
        let _ = d.forward(&x);
        let gx = d.backward(&Tensor::full(vec![2], 1.0));
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = d.forward(&xp).sum();
            let lm = d.forward(&xm).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.data()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn params_exposed() {
        let mut d = Dense::new(4, 3, 0);
        let ps = d.params();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].value.shape(), &[3, 4]);
        assert_eq!(ps[1].value.shape(), &[3]);
    }
}
