//! 2-D convolution layer built on the im2col kernels in [`crate::ops`].

use crate::init::{kaiming_uniform, seeded_rng};
use crate::kernels::conv2d_into;
use crate::layer::Layer;
use crate::net::Param;
use crate::ops::{conv2d_backward, conv2d_forward, ConvSpec};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A 2-D convolution over `CHW` tensors with square kernels.
///
/// The weight tensor is stored in the im2col-friendly layout
/// `[out_channels, in_channels * kernel * kernel]`.
pub struct Conv2d {
    spec: ConvSpec,
    weight: Param,
    bias: Param,
    cached_cols: Option<Tensor>,
    cached_in_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// `seed` makes the Kaiming initialisation deterministic.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        let spec = ConvSpec { in_channels, out_channels, kernel, stride, padding };
        let fan_in = in_channels * kernel * kernel;
        let mut rng = seeded_rng(seed.wrapping_mul(0x51_7C_C1_B7).wrapping_add(3));
        let weight = Param::new(kaiming_uniform(vec![out_channels, fan_in], fan_in, &mut rng));
        let bias = Param::new(Tensor::zeros(vec![out_channels]));
        Conv2d { spec, weight, bias, cached_cols: None, cached_in_hw: (0, 0) }
    }

    /// Convenience constructor for the common 3×3 / stride-1 / pad-1 shape,
    /// which preserves spatial dimensions.
    pub fn same(in_channels: usize, out_channels: usize, seed: u64) -> Self {
        Conv2d::new(in_channels, out_channels, 3, 1, 1, seed)
    }

    /// The convolution specification (channels, kernel, stride, padding).
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// Number of trainable scalars in this layer.
    pub fn num_weights(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    /// Read-only access to the `[out_channels, in_channels*k*k]` weight
    /// matrix (used by post-training quantization).
    pub fn weight(&self) -> &crate::tensor::Tensor {
        &self.weight.value
    }

    /// Read-only access to the bias vector.
    pub fn bias(&self) -> &crate::tensor::Tensor {
        &self.bias.value
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv2d expects CHW input");
        assert_eq!(input.shape()[0], self.spec.in_channels, "Conv2d channel mismatch");
        self.cached_in_hw = (input.shape()[1], input.shape()[2]);
        let (out, cols) = conv2d_forward(input, &self.weight.value, self.bias.value.data(), &self.spec);
        self.cached_cols = Some(cols);
        out
    }

    fn infer(&self, ws: &mut Workspace) {
        debug_assert_eq!(ws.shape().len(), 3, "Conv2d expects CHW input");
        debug_assert_eq!(ws.shape()[0], self.spec.in_channels, "Conv2d channel mismatch");
        let (h, w) = (ws.shape()[1], ws.shape()[2]);
        let (oh, ow) = self.spec.out_size(h, w);
        {
            // The fused kernel uses `cols` as its padded-image scratch on
            // the direct 3×3 path and as the column matrix on the im2col
            // fallback.
            let (input, out, cols) = ws.split();
            conv2d_into(input, h, w, &self.spec, self.weight.value.data(), self.bias.value.data(), cols, out);
        }
        ws.commit(&[self.spec.out_channels, oh, ow]);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cols = self.cached_cols.as_ref().expect("Conv2d::backward called before forward");
        let (h, w) = self.cached_in_hw;
        let (grad_in, grad_w, grad_b) = conv2d_backward(grad_out, &self.weight.value, cols, &self.spec, h, w);
        self.weight.grad.add_scaled(&grad_w, 1.0);
        for (g, gb) in self.bias.grad.data_mut().iter_mut().zip(&grad_b) {
            *g += gb;
        }
        grad_in
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_conv_preserves_shape() {
        let mut c = Conv2d::same(2, 4, 0);
        let x = Tensor::full(vec![2, 8, 8], 1.0);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[4, 8, 8]);
    }

    #[test]
    fn stride_two_halves_spatial_dims() {
        let mut c = Conv2d::new(1, 3, 3, 2, 1, 0);
        let x = Tensor::full(vec![1, 8, 8], 1.0);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[3, 4, 4]);
    }

    #[test]
    fn gradient_check_small_conv() {
        // L = sum(conv(x)); finite-difference check of a few weight entries.
        let mut c = Conv2d::new(1, 2, 3, 1, 1, 5);
        let x = Tensor::from_vec((0..16).map(|v| (v as f32 * 0.21).sin()).collect(), vec![1, 4, 4]);
        let _y = c.forward(&x);
        let gout = Tensor::full(vec![2, 4, 4], 1.0);
        let gx = c.backward(&gout);
        let analytic_w = c.weight.grad.clone();
        let eps = 1e-3;
        for idx in [0usize, 3, 7, 12, 17] {
            let orig = c.weight.value.data()[idx];
            c.weight.value.data_mut()[idx] = orig + eps;
            let lp = c.forward(&x).sum();
            c.weight.value.data_mut()[idx] = orig - eps;
            let lm = c.forward(&x).sum();
            c.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_w.data()[idx]).abs() < 2e-2,
                "w[{idx}] {numeric} vs {}",
                analytic_w.data()[idx]
            );
        }
        // input gradient check (a couple of positions)
        for i in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = c.forward(&xp).sum();
            let lm = c.forward(&xm).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.data()[i]).abs() < 2e-2, "x[{i}] {numeric} vs {}", gx.data()[i]);
        }
    }

    #[test]
    fn bias_gradient_accumulates_over_cells() {
        let mut c = Conv2d::new(1, 1, 1, 1, 0, 0);
        let x = Tensor::full(vec![1, 3, 3], 1.0);
        let _ = c.forward(&x);
        let _ = c.backward(&Tensor::full(vec![1, 3, 3], 1.0));
        // 9 output cells each contribute 1 to the single bias gradient.
        assert_eq!(c.bias.grad.data()[0], 9.0);
    }
}
