//! Pooling layers: max pooling and global average pooling.

use crate::kernels::{global_avg_pool_into, maxpool2d_into};
use crate::layer::Layer;
use crate::net::Param;
use crate::ops::{global_avg_pool, global_avg_pool_backward, maxpool2d_backward, maxpool2d_forward};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Square, non-overlapping max pooling (window == stride).
pub struct MaxPool2d {
    size: usize,
    cached_idx: Vec<usize>,
    cached_in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window size.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "pool size must be >= 1");
        MaxPool2d { size, cached_idx: Vec::new(), cached_in_shape: Vec::new() }
    }

    /// Pool window size.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_in_shape = input.shape().to_vec();
        let (out, idx) = maxpool2d_forward(input, self.size);
        self.cached_idx = idx;
        out
    }

    fn infer(&self, ws: &mut Workspace) {
        debug_assert_eq!(ws.shape().len(), 3, "MaxPool2d expects CHW input");
        let (c, h, w) = (ws.shape()[0], ws.shape()[1], ws.shape()[2]);
        {
            let (input, out, _cols) = ws.split();
            maxpool2d_into(input, c, h, w, self.size, out);
        }
        ws.commit(&[c, h / self.size, w / self.size]);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        maxpool2d_backward(grad_out, &self.cached_idx, &self.cached_in_shape)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Global average pooling `[C, H, W] -> [C]` (the GAP block of Figs. 2, 4, 5).
pub struct GlobalAvgPool {
    cached_in_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_in_shape: Vec::new() }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_in_shape = input.shape().to_vec();
        global_avg_pool(input)
    }

    fn infer(&self, ws: &mut Workspace) {
        debug_assert_eq!(ws.shape().len(), 3, "GlobalAvgPool expects CHW input");
        let (c, h, w) = (ws.shape()[0], ws.shape()[1], ws.shape()[2]);
        {
            let (input, out, _cols) = ws.split();
            global_avg_pool_into(input, c, h, w, out);
        }
        ws.commit(&[c]);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        global_avg_pool_backward(grad_out, &self.cached_in_shape)
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), vec![1, 4, 4]);
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        let g = p.backward(&Tensor::full(vec![1, 2, 2], 1.0));
        assert_eq!(g.shape(), &[1, 4, 4]);
        assert_eq!(g.sum(), 4.0);
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn gap_layer_roundtrip() {
        let mut g = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], vec![1, 2, 2]);
        let y = g.forward(&x);
        assert_eq!(y.data(), &[4.0]);
        let gx = g.backward(&Tensor::from_vec(vec![8.0], vec![1]));
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "pool size")]
    fn zero_pool_size_rejected() {
        let _ = MaxPool2d::new(0);
    }
}
