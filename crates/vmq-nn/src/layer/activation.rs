//! Element-wise activation layers (ReLU, LeakyReLU, Sigmoid, Tanh).

use crate::layer::Layer;
use crate::ops::sigmoid;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Act {
    /// Rectified linear unit, used by the IC count head (Fig. 2).
    Relu,
    /// Leaky ReLU with the given negative slope, used by the OD-COF head
    /// (Table I uses LeakyReLU throughout).
    LeakyRelu(f32),
    /// Logistic sigmoid, used by the OD grid head so each cell is a
    /// probability of object presence.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Act {
    /// Applies the activation function to one value (shared by the f32
    /// layer below and the int8 inference path in [`crate::quant`], so the
    /// two modes use the same nonlinearity arithmetic).
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Act::Relu => x.max(0.0),
            Act::LeakyRelu(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Act::Sigmoid => sigmoid(x),
            Act::Tanh => x.tanh(),
        }
    }

    /// Applies the activation to a whole buffer in place, routing ReLU and
    /// LeakyReLU through the dispatched SIMD kernels (bit-identical to the
    /// per-element [`Act::apply`] modulo the sign of zero for ReLU).
    pub fn apply_slice(self, data: &mut [f32]) {
        match self {
            Act::Relu => crate::kernels::relu_in_place(data),
            Act::LeakyRelu(slope) => crate::kernels::leaky_relu_in_place(data, slope),
            _ => {
                for v in data {
                    *v = self.apply(*v);
                }
            }
        }
    }
}

/// An element-wise activation layer.
pub struct Activation {
    act: Act,
    cached_input: Option<Tensor>,
    cached_output: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer.
    pub fn new(act: Act) -> Self {
        Activation { act, cached_input: None, cached_output: None }
    }

    /// The activation function used.
    pub fn act(&self) -> Act {
        self.act
    }

    fn apply(&self, x: f32) -> f32 {
        self.act.apply(x)
    }

    fn derivative(&self, x: f32, y: f32) -> f32 {
        match self.act {
            Act::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Act::LeakyRelu(slope) => {
                if x >= 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            Act::Sigmoid => y * (1.0 - y),
            Act::Tanh => 1.0 - y * y,
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(|v| self.apply(v));
        self.cached_input = Some(input.clone());
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, ws: &mut Workspace) {
        // Element-wise: applied in place, no buffer rotation needed.
        self.act.apply_slice(ws.data_mut());
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Activation::backward before forward");
        let output = self.cached_output.as_ref().expect("Activation::backward before forward");
        assert_eq!(grad_out.shape(), input.shape());
        let data: Vec<f32> = grad_out
            .data()
            .iter()
            .zip(input.data().iter().zip(output.data()))
            .map(|(&g, (&x, &y))| g * self.derivative(x, y))
            .collect();
        Tensor::from_vec(data, input.shape().to_vec())
    }

    fn name(&self) -> &'static str {
        "Activation"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut a = Activation::new(Act::Relu);
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], vec![3]);
        let y = a.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.5, 2.0]);
        let g = a.backward(&Tensor::full(vec![3], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut a = Activation::new(Act::LeakyRelu(0.1));
        let x = Tensor::from_vec(vec![-2.0, 3.0], vec![2]);
        let y = a.forward(&x);
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data()[1], 3.0);
        let g = a.backward(&Tensor::full(vec![2], 2.0));
        assert!((g.data()[0] - 0.2).abs() < 1e-6);
        assert_eq!(g.data()[1], 2.0);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut a = Activation::new(Act::Sigmoid);
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0], vec![3]);
        let _ = a.forward(&x);
        let g = a.backward(&Tensor::full(vec![3], 1.0));
        let eps = 1e-3;
        for i in 0..3 {
            let fp = sigmoid(x.data()[i] + eps);
            let fm = sigmoid(x.data()[i] - eps);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn tanh_gradient_check() {
        let mut a = Activation::new(Act::Tanh);
        let x = Tensor::from_vec(vec![0.5, -0.5], vec![2]);
        let _ = a.forward(&x);
        let g = a.backward(&Tensor::full(vec![2], 1.0));
        let eps = 1e-3;
        for i in 0..2 {
            let numeric = ((x.data()[i] + eps).tanh() - (x.data()[i] - eps).tanh()) / (2.0 * eps);
            assert!((numeric - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn act_is_reported() {
        let a = Activation::new(Act::LeakyRelu(0.01));
        assert_eq!(a.act(), Act::LeakyRelu(0.01));
    }
}
