//! Loss functions used by the paper's filters.
//!
//! * [`mse_loss`] — mean squared error, used for the class-activation-map
//!   regularisation term of Eq. 2.
//! * [`smooth_l1_loss`] — SmoothL1 (Huber), used for count regression in both
//!   Eq. 2 and Eq. 3, following Fast R-CNN.
//! * [`masked_grid_loss`] — the grid term of Eq. 3: squared error over grid
//!   cells with separate weights for cells that contain an object
//!   (`lambda_obj`) and cells that do not (`lambda_noobj`).
//! * [`multi_task_loss`] — the per-class weighted combination of Eq. 2.
//!
//! Every function returns `(loss_value, gradient_wrt_prediction)` so callers
//! can feed the gradient straight into a backward pass.

use crate::tensor::Tensor;

/// Mean squared error `1/n Σ (pred - target)²` and its gradient.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse_loss shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape().to_vec());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data()) {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// SmoothL1 (Huber) loss with transition point `beta = 1`:
///
/// `0.5 d²` for `|d| < 1`, `|d| - 0.5` otherwise, averaged over elements.
pub fn smooth_l1_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "smooth_l1_loss shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape().to_vec());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data()) {
        let d = p - t;
        if d.abs() < 1.0 {
            loss += 0.5 * d * d;
            *g = d / n;
        } else {
            loss += d.abs() - 0.5;
            *g = d.signum() / n;
        }
    }
    (loss / n, grad)
}

/// The grid term of Eq. 3.
///
/// `pred` and `target` are `[g*g]` (or `[g, g]`) tensors for one class;
/// `target` must be a 0/1 occupancy map. Cells with an object are weighted by
/// `lambda_obj`, empty cells by `lambda_noobj`, and the sum is normalised by
/// `g²` as in the paper.
pub fn masked_grid_loss(pred: &Tensor, target: &Tensor, lambda_obj: f32, lambda_noobj: f32) -> (f32, Tensor) {
    assert_eq!(pred.len(), target.len(), "masked_grid_loss length mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape().to_vec());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data()) {
        let lambda = if t > 0.5 { lambda_obj } else { lambda_noobj };
        let d = p - t;
        loss += lambda * d * d;
        *g = 2.0 * lambda * d / n;
    }
    (loss / n, grad)
}

/// Per-class weights used by the multi-task loss of Eq. 2.
///
/// The paper computes `weight_c` as the fraction of training frames that
/// contain class `c`.
pub fn class_weights_from_presence(frames_with_class: &[usize], total_frames: usize) -> Vec<f32> {
    let total = total_frames.max(1) as f32;
    frames_with_class.iter().map(|&f| (f as f32 / total).max(1e-3)).collect()
}

/// The multi-task loss of Eq. 2 for a single frame.
///
/// For each class `c`: `weight_c * (alpha * SmoothL1(count_c, count̂_c) +
/// beta * MSE(map_c, map̂_c))`. Returns the total loss, the gradient w.r.t.
/// the count vector (`[n_classes]`) and the gradient w.r.t. the activation
/// maps (`[n_classes, g, g]`).
#[allow(clippy::too_many_arguments)]
pub fn multi_task_loss(
    count_pred: &Tensor,
    count_target: &Tensor,
    maps_pred: &Tensor,
    maps_target: &Tensor,
    class_weights: &[f32],
    alpha: f32,
    beta: f32,
) -> (f32, Tensor, Tensor) {
    let n_classes = count_pred.len();
    assert_eq!(count_target.len(), n_classes);
    assert_eq!(class_weights.len(), n_classes, "class weight count mismatch");
    assert_eq!(maps_pred.shape(), maps_target.shape());
    assert_eq!(maps_pred.shape()[0], n_classes, "map class dimension mismatch");
    let g2 = (maps_pred.len() / n_classes.max(1)).max(1) as f32;

    let mut total = 0.0f32;
    let mut count_grad = Tensor::zeros(count_pred.shape().to_vec());
    let mut maps_grad = Tensor::zeros(maps_pred.shape().to_vec());

    for (c, &w) in class_weights.iter().enumerate().take(n_classes) {
        // SmoothL1 on the scalar count for this class.
        let d = count_pred.data()[c] - count_target.data()[c];
        let (l_cnt, g_cnt) = if d.abs() < 1.0 { (0.5 * d * d, d) } else { (d.abs() - 0.5, d.signum()) };
        total += w * alpha * l_cnt;
        count_grad.data_mut()[c] = w * alpha * g_cnt;

        if beta != 0.0 {
            // MSE on the class activation map of this class.
            let per_class = maps_pred.len() / n_classes;
            let mp = &maps_pred.data()[c * per_class..(c + 1) * per_class];
            let mt = &maps_target.data()[c * per_class..(c + 1) * per_class];
            let mg = &mut maps_grad.data_mut()[c * per_class..(c + 1) * per_class];
            let mut l_map = 0.0f32;
            for ((g, &p), &t) in mg.iter_mut().zip(mp).zip(mt) {
                let dd = p - t;
                l_map += dd * dd;
                *g = w * beta * 2.0 * dd / g2;
            }
            total += w * beta * l_map / g2;
        }
    }
    (total, count_grad, maps_grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        let p = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let t = Tensor::from_vec(vec![0.0, 4.0], vec![2]);
        let (l, g) = mse_loss(&p, &t);
        assert!((l - 2.5).abs() < 1e-6);
        assert_eq!(g.data(), &[1.0, -2.0]);
    }

    #[test]
    fn smooth_l1_quadratic_and_linear_regions() {
        let p = Tensor::from_vec(vec![0.5, 3.0], vec![2]);
        let t = Tensor::from_vec(vec![0.0, 0.0], vec![2]);
        let (l, g) = smooth_l1_loss(&p, &t);
        // 0.5*0.25 + (3 - 0.5) = 0.125 + 2.5 = 2.625, averaged over 2 = 1.3125
        assert!((l - 1.3125).abs() < 1e-6);
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
        assert!((g.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn smooth_l1_gradient_is_bounded() {
        let p = Tensor::from_vec(vec![100.0], vec![1]);
        let t = Tensor::from_vec(vec![0.0], vec![1]);
        let (_, g) = smooth_l1_loss(&p, &t);
        assert_eq!(g.data()[0], 1.0);
    }

    #[test]
    fn masked_grid_loss_weights_cells() {
        let p = Tensor::from_vec(vec![0.0, 1.0], vec![2]);
        let t = Tensor::from_vec(vec![1.0, 0.0], vec![2]);
        // false negative weighted 5, false positive weighted 0.5
        let (l, g) = masked_grid_loss(&p, &t, 5.0, 0.5);
        assert!((l - (5.0 + 0.5) / 2.0).abs() < 1e-6);
        assert!(g.data()[0] < 0.0 && g.data()[1] > 0.0);
        assert!(g.data()[0].abs() > g.data()[1].abs());
    }

    #[test]
    fn class_weights_fraction() {
        let w = class_weights_from_presence(&[50, 10, 0], 100);
        assert!((w[0] - 0.5).abs() < 1e-6);
        assert!((w[1] - 0.1).abs() < 1e-6);
        assert!(w[2] > 0.0, "weights are floored away from zero");
    }

    #[test]
    fn multi_task_loss_count_only_when_beta_zero() {
        let cp = Tensor::from_vec(vec![2.0, 0.0], vec![2]);
        let ct = Tensor::from_vec(vec![1.0, 0.0], vec![2]);
        let mp = Tensor::zeros(vec![2, 2, 2]);
        let mt = Tensor::full(vec![2, 2, 2], 1.0);
        let (l, gc, gm) = multi_task_loss(&cp, &ct, &mp, &mt, &[1.0, 1.0], 1.0, 0.0);
        assert!((l - 0.5).abs() < 1e-6, "only the count term should contribute, got {l}");
        assert!(gc.data()[0] > 0.0);
        assert_eq!(gm.sum(), 0.0);
    }

    #[test]
    fn multi_task_loss_adds_map_term() {
        let cp = Tensor::from_vec(vec![1.0], vec![1]);
        let ct = Tensor::from_vec(vec![1.0], vec![1]);
        let mp = Tensor::zeros(vec![1, 2, 2]);
        let mt = Tensor::full(vec![1, 2, 2], 1.0);
        let (l, _gc, gm) = multi_task_loss(&cp, &ct, &mp, &mt, &[1.0], 1.0, 10.0);
        assert!(l > 0.0);
        assert!(gm.data().iter().all(|&v| v < 0.0), "map gradient should push predictions up");
    }

    #[test]
    fn multi_task_loss_respects_class_weights() {
        let cp = Tensor::from_vec(vec![2.0, 2.0], vec![2]);
        let ct = Tensor::from_vec(vec![0.0, 0.0], vec![2]);
        let mp = Tensor::zeros(vec![2, 1, 1]);
        let mt = Tensor::zeros(vec![2, 1, 1]);
        let (_, gc, _) = multi_task_loss(&cp, &ct, &mp, &mt, &[1.0, 0.1], 1.0, 0.0);
        assert!(gc.data()[0].abs() > gc.data()[1].abs());
    }
}
