//! Caller-owned scratch buffers for allocation-free inference.
//!
//! The training path ([`crate::net::Sequential::forward`]) allocates freely:
//! every layer materialises its output and caches intermediates for the
//! backward pass. Inference needs neither the caches nor the allocations —
//! the filter hot path runs the same small network on thousands of frames,
//! and a heap allocation per convolution (the im2col column matrix alone is
//! tens of kilobytes) dominates the per-frame cost.
//!
//! A [`Workspace`] holds the handful of buffers one inference pass needs:
//!
//! * two ping-pong activation buffers (`cur` / `nxt`) that layers read from
//!   and write into,
//! * an im2col column buffer shared by every convolution of the pass, and
//! * a stash buffer for networks that branch (the OD filter reads its branch
//!   output twice: once for the grid head, once for the count head).
//!
//! Buffers grow to the high-water mark of the first pass and are reused —
//! Vec capacity is kept across [`Workspace::load`] calls — so steady-state
//! inference performs no heap allocation inside the network. Each worker
//! thread of a sharded batch owns one workspace; the network itself is only
//! read (`&self`), which is what lets a trained net serve many threads
//! concurrently without a lock.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reusable scratch buffers for one thread's inference passes.
///
/// The three `q_*` buffers extend the workspace for int8 quantized
/// inference ([`crate::quant`]): the quantized activation, the quantized
/// patch (im2row) matrix and the i32 GEMM accumulator. Like the f32
/// buffers they grow once and are reused, so quantized passes are also
/// allocation-free in steady state.
#[derive(Debug, Default)]
pub struct Workspace {
    cur: Vec<f32>,
    nxt: Vec<f32>,
    cols: Vec<f32>,
    stash_buf: Vec<f32>,
    shape: Vec<usize>,
    stash_shape: Vec<usize>,
    q_act: Vec<i8>,
    q_cols: Vec<i8>,
    q_acc: Vec<i32>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Loads a tensor as the current activation.
    pub fn load(&mut self, input: &Tensor) {
        self.load_slice(input.data(), input.shape());
    }

    /// Loads raw data with an explicit shape as the current activation.
    pub fn load_slice(&mut self, data: &[f32], shape: &[usize]) {
        debug_assert_eq!(data.len(), shape.iter().product::<usize>(), "workspace load shape mismatch");
        self.cur.clear();
        self.cur.extend_from_slice(data);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// The current activation data.
    pub fn data(&self) -> &[f32] {
        &self.cur
    }

    /// Mutable view of the current activation (for in-place layers).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.cur
    }

    /// The current activation shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Replaces the current shape without touching the data (reshape-style
    /// layers such as `Flatten`).
    pub fn set_shape(&mut self, shape: &[usize]) {
        debug_assert_eq!(self.cur.len(), shape.iter().product::<usize>(), "workspace reshape mismatch");
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Splits the workspace into `(current input, output buffer, column
    /// buffer)` for a layer that reads `cur` and writes its output into the
    /// back buffer (and, for convolutions, its columns into `cols`).
    pub fn split(&mut self) -> (&[f32], &mut Vec<f32>, &mut Vec<f32>) {
        (&self.cur, &mut self.nxt, &mut self.cols)
    }

    /// [`Workspace::split`] for int8 layers: `(current f32 input, f32
    /// output buffer, i8 activation buffer, i8 patch buffer, i32
    /// accumulator buffer)`.
    #[allow(clippy::type_complexity)]
    pub fn split_quant(&mut self) -> (&[f32], &mut Vec<f32>, &mut Vec<i8>, &mut Vec<i8>, &mut Vec<i32>) {
        (&self.cur, &mut self.nxt, &mut self.q_act, &mut self.q_cols, &mut self.q_acc)
    }

    /// Promotes the back buffer (filled via [`Workspace::split`]) to the
    /// current activation with the given shape.
    pub fn commit(&mut self, shape: &[usize]) {
        debug_assert_eq!(self.nxt.len(), shape.iter().product::<usize>(), "workspace commit shape mismatch");
        std::mem::swap(&mut self.cur, &mut self.nxt);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Saves a copy of the current activation so a second head can resume
    /// from it after the first head overwrote the ping-pong buffers.
    pub fn stash(&mut self) {
        self.stash_buf.clear();
        self.stash_buf.extend_from_slice(&self.cur);
        self.stash_shape.clear();
        self.stash_shape.extend_from_slice(&self.shape);
    }

    /// Restores the stashed activation as the current one.
    pub fn unstash(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.stash_buf);
        std::mem::swap(&mut self.shape, &mut self.stash_shape);
    }

    /// Copies the current activation out as a tensor (the one allocation of
    /// an inference pass, and only when the caller wants a `Tensor` result).
    pub fn output(&self) -> Tensor {
        Tensor::from_vec(self.cur.clone(), self.shape.clone())
    }

    /// Total bytes of heap capacity held across all scratch buffers. Flat
    /// once the buffers reach their high-water mark — the reuse invariant
    /// [`scratch_growth_events`] counts violations of.
    pub fn capacity_bytes(&self) -> usize {
        std::mem::size_of::<f32>()
            * (self.cur.capacity() + self.nxt.capacity() + self.cols.capacity() + self.stash_buf.capacity())
            + std::mem::size_of::<usize>() * (self.shape.capacity() + self.stash_shape.capacity())
            + self.q_act.capacity()
            + self.q_cols.capacity()
            + std::mem::size_of::<i32>() * self.q_acc.capacity()
    }
}

thread_local! {
    /// One workspace per thread, living as long as the thread does. On the
    /// persistent `vmq_exec` pool workers this is what turns "fresh scratch
    /// per sharded batch" into "scratch reused across every batch the worker
    /// ever runs".
    static THREAD_WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Times the thread-local workspace grew past its previous high-water mark,
/// process-wide. After warm-up this must stop moving; a sharded stage that
/// re-allocates scratch every batch shows up here (and fails the fleet
/// bench's steady-state gate).
static GROWTH_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of thread-local workspace growth events.
pub fn scratch_growth_events() -> u64 {
    GROWTH_EVENTS.load(Ordering::Relaxed)
}

/// Runs `f` with this thread's persistent [`Workspace`], recording a growth
/// event if the call left the scratch buffers larger than it found them.
/// Callers must not nest this (the workspace is exclusively borrowed), which
/// mirrors the old discipline of one locally constructed workspace per shard
/// loop.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WORKSPACE.with(|cell| {
        let mut ws = cell.borrow_mut();
        let before = ws.capacity_bytes();
        let out = f(&mut ws);
        if ws.capacity_bytes() > before {
            GROWTH_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_split_commit_roundtrip() {
        let mut ws = Workspace::new();
        ws.load(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]));
        assert_eq!(ws.shape(), &[2, 2]);
        {
            let (cur, nxt, _cols) = ws.split();
            nxt.clear();
            nxt.extend(cur.iter().map(|v| v * 2.0));
        }
        ws.commit(&[4]);
        assert_eq!(ws.data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(ws.output().shape(), &[4]);
    }

    #[test]
    fn stash_survives_overwrites() {
        let mut ws = Workspace::new();
        ws.load(&Tensor::from_vec(vec![5.0, 6.0], vec![2]));
        ws.stash();
        ws.load(&Tensor::from_vec(vec![0.0; 3], vec![3]));
        ws.unstash();
        assert_eq!(ws.data(), &[5.0, 6.0]);
        assert_eq!(ws.shape(), &[2]);
    }

    #[test]
    fn thread_workspace_capacity_is_flat_after_warmup() {
        let load = vec![0.5f32; 4096];
        // First call grows the thread-local buffers to the high-water mark…
        let warm = with_thread_workspace(|ws| {
            ws.load_slice(&load, &[4096]);
            ws.stash();
            ws.capacity_bytes()
        });
        // …after which identical passes must not allocate.
        for _ in 0..10 {
            let now = with_thread_workspace(|ws| {
                ws.load_slice(&load, &[4096]);
                ws.stash();
                ws.capacity_bytes()
            });
            assert!(now <= warm, "steady-state pass grew scratch: {now} > {warm}");
        }
    }

    #[test]
    fn growth_counter_records_high_water_moves() {
        let before = scratch_growth_events();
        // vmq-lint: allow(no-raw-thread-spawn) -- the test needs a fresh OS
        // thread whose thread-local workspace starts empty; a pool worker
        // may already hold a warm workspace from earlier tasks.
        std::thread::spawn(|| {
            // A fresh thread starts from an empty workspace, so this call
            // must register as growth.
            with_thread_workspace(|ws| ws.load_slice(&[1.0; 512], &[512]));
        })
        .join()
        .unwrap();
        assert!(scratch_growth_events() > before);
    }

    #[test]
    fn set_shape_reshapes_in_place() {
        let mut ws = Workspace::new();
        ws.load(&Tensor::from_vec(vec![1.0; 6], vec![2, 3]));
        ws.set_shape(&[6]);
        assert_eq!(ws.shape(), &[6]);
        assert_eq!(ws.data().len(), 6);
    }
}
