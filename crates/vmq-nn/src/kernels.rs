//! Runtime-dispatched SIMD variants of the inference kernels.
//!
//! [`crate::ops`] holds the scalar reference implementations of the five
//! `_into` inference kernels. This module wraps them in a dispatch layer
//! that, once per process, picks the widest instruction set the host
//! supports — AVX-512 then AVX2 on x86_64 (checked with
//! `is_x86_feature_detected!`), NEON on aarch64 (baseline there), scalar
//! everywhere else — and routes every layer's inference through it.
//!
//! ## Equivalence contract
//!
//! The scalar kernels are the bit-exact reference; goldens and parity pins
//! are recorded under `VMQ_FORCE_SCALAR=1`. SIMD backends agree with the
//! reference within a documented per-element tolerance, not bitwise:
//!
//! * **Matmul-shaped kernels** (`matmul_into`, the fused `conv2d_into`)
//!   use FMA and register-blocked accumulation orders chosen for the
//!   hardware, so individual elements may round differently from the
//!   scalar loop. The contract is ≤ 128 ULP (or an absolute 10⁻⁶ near
//!   zero) per element — in practice a relative ~1.5·10⁻⁵ — pinned by the
//!   dispatch-parity tests below. Within one backend results are still
//!   fully deterministic: the same inputs produce the same bits on every
//!   call, which is what the batch/worker-invariance proptests rely on.
//! * **Element-wise and comparison kernels** (`maxpool2d`, activations,
//!   `global_avg_pool`, `matvec`) keep the scalar accumulation order and
//!   remain bit-identical on every backend (modulo the sign of zero for
//!   ReLU, which compares equal).
//!
//! Setting `VMQ_FORCE_SCALAR=1` in the environment pins dispatch to the
//! scalar reference for the whole process (decided once, at first use).
//!
//! Two kernels deserve a note: `im2col` is pure data movement whose
//! stride-1 span copies already lower to vectorised `memcpy`, so every
//! backend shares the scalar implementation (the AVX2 fused conv avoids
//! it entirely for the 3×3/stride-1/pad-1 shape every filter trunk uses,
//! working from a zero-padded copy of the input instead); `maxpool2d` is
//! vectorised for the 2×2 window the filter trunks use and falls back to
//! scalar for other window sizes.

use crate::ops::{self, ConvSpec};
use std::sync::OnceLock;

/// Maximum per-element ULP distance a SIMD matmul-shaped kernel may land
/// from the scalar reference (the module-level equivalence contract;
/// ~1.5·10⁻⁵ relative for f32).
pub const ULP_TOLERANCE: u64 = 128;

/// Absolute per-element slack near zero, where ULP distance is
/// meaningless (adjacent subnormals are many ULPs apart in value terms).
pub const ABS_TOLERANCE: f32 = 1e-6;

/// Which kernel implementation dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable scalar reference (always available, bit-exact baseline).
    Scalar,
    /// 256-bit AVX2+FMA kernels (x86_64 only, runtime-detected).
    Avx2,
    /// 512-bit AVX-512 kernels (x86_64 only, runtime-detected; doubles
    /// the FMA width and adds native masked tails).
    Avx512,
    /// 128-bit NEON kernels (aarch64 only, baseline feature there).
    Neon,
}

impl KernelBackend {
    /// Every backend variant, supported on this host or not (see
    /// [`KernelBackend::is_supported`]).
    pub const ALL: [KernelBackend; 4] =
        [KernelBackend::Scalar, KernelBackend::Avx2, KernelBackend::Avx512, KernelBackend::Neon];

    /// Short lower-case name used in bench records and stage metrics.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Neon => "neon",
        }
    }

    /// True when the current host can execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            KernelBackend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // The f32 kernels fuse multiply-adds, so the backend
                    // needs FMA alongside AVX2 (every AVX2 part ships it,
                    // but the guard keeps the `target_feature` contract
                    // honest).
                    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelBackend::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // The AVX-512 backend delegates its element-wise
                    // kernels to the AVX2 module, so it requires both
                    // feature sets.
                    std::arch::is_x86_feature_detected!("avx512f") && KernelBackend::Avx2.is_supported()
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelBackend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// True for any non-scalar backend.
    pub fn is_simd(self) -> bool {
        self != KernelBackend::Scalar
    }

    /// The backends that can run on this host, scalar first.
    pub fn supported() -> Vec<KernelBackend> {
        KernelBackend::ALL.iter().copied().filter(|b| b.is_supported()).collect()
    }

    /// Detects the widest supported backend, ignoring the env override.
    pub fn detect() -> KernelBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if KernelBackend::Avx512.is_supported() {
                return KernelBackend::Avx512;
            }
            if KernelBackend::Avx2.is_supported() {
                return KernelBackend::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            return KernelBackend::Neon;
        }
        #[allow(unreachable_code)]
        KernelBackend::Scalar
    }

    /// True when `VMQ_FORCE_SCALAR` requests the scalar reference path.
    ///
    /// Any value other than empty or `0` counts as a request; the decision
    /// is cached on first use together with [`KernelBackend::active`].
    pub fn forced_scalar() -> bool {
        std::env::var_os("VMQ_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
    }

    /// The backend every auto-dispatched kernel call uses, decided once per
    /// process: `VMQ_FORCE_SCALAR=1` pins scalar, otherwise
    /// [`KernelBackend::detect`].
    pub fn active() -> KernelBackend {
        static ACTIVE: OnceLock<KernelBackend> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            if KernelBackend::forced_scalar() {
                KernelBackend::Scalar
            } else {
                KernelBackend::detect()
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Explicit-backend entry points
//
// `*_with` lets tests and benches pin a backend regardless of the process
// cache or environment; unsupported backends fall back to scalar (the only
// way to reach that fallback is asking for a foreign ISA's backend).
// ---------------------------------------------------------------------------

/// [`ops::matmul_into`] via the chosen backend.
#[allow(unsafe_code)]
pub fn matmul_into_with(
    backend: KernelBackend,
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut Vec<f32>,
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the arm guard just confirmed AVX-512F (+AVX2/FMA) via
        // runtime detection, satisfying the callee's `target_feature`
        // contract; slice sizes are the callee's debug-asserted contract.
        KernelBackend::Avx512 if backend.is_supported() => unsafe { avx512::matmul_into(a, m, k, b, n, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX2+FMA at runtime (the callee's
        // `target_feature` requirement).
        KernelBackend::Avx2 if backend.is_supported() => unsafe { avx2::matmul_into(a, m, k, b, n, out) },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => neon::matmul_into(a, m, k, b, n, out),
        _ => ops::matmul_into(a, m, k, b, n, out),
    }
}

/// [`ops::matvec_into`] via the chosen backend.
#[allow(unsafe_code)]
pub fn matvec_into_with(backend: KernelBackend, a: &[f32], m: usize, k: usize, x: &[f32], out: &mut Vec<f32>) {
    match backend {
        // AVX-512 shares the AVX2 matvec: it is bit-identical to scalar
        // and too small to benefit from wider vectors.
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX2 (implied by AVX-512 support too) at
        // runtime, satisfying the callee's `target_feature` contract.
        KernelBackend::Avx2 | KernelBackend::Avx512 if backend.is_supported() => unsafe {
            avx2::matvec_into(a, m, k, x, out)
        },
        _ => ops::matvec_into(a, m, k, x, out),
    }
}

/// [`ops::im2col_into`] via the chosen backend.
///
/// All backends share the scalar implementation: im2col is pure data
/// movement and its stride-1 fast path is already a sequence of `memcpy`
/// span copies, which the portable code lowers to vectorised moves.
pub fn im2col_into_with(
    backend: KernelBackend,
    input: &[f32],
    h: usize,
    w: usize,
    spec: &ConvSpec,
    out: &mut Vec<f32>,
) {
    let _ = backend;
    ops::im2col_into(input, h, w, spec, out);
}

/// [`ops::maxpool2d_into`] via the chosen backend (2×2 windows are
/// vectorised; other sizes use the scalar loop on every backend).
#[allow(unsafe_code)]
pub fn maxpool2d_into_with(
    backend: KernelBackend,
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    size: usize,
    out: &mut Vec<f32>,
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX2 at runtime (the callee's
        // `target_feature` requirement) and pins the vectorised 2×2 shape.
        KernelBackend::Avx2 | KernelBackend::Avx512 if backend.is_supported() && size == 2 => unsafe {
            avx2::maxpool2d_2x2_into(input, c, h, w, out)
        },
        _ => ops::maxpool2d_into(input, c, h, w, size, out),
    }
}

/// [`ops::global_avg_pool_into`] via the chosen backend.
#[allow(unsafe_code)]
pub fn global_avg_pool_into_with(
    backend: KernelBackend,
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    out: &mut Vec<f32>,
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX2 at runtime (the callee's
        // `target_feature` requirement).
        KernelBackend::Avx2 | KernelBackend::Avx512 if backend.is_supported() => unsafe {
            avx2::global_avg_pool_into(input, c, h, w, out)
        },
        _ => ops::global_avg_pool_into(input, c, h, w, out),
    }
}

/// Fused 2-D convolution: `out = weight (m × c·k²) ⊛ input (c × h × w)`
/// plus bias, via the chosen backend.
///
/// The scalar reference is the composition the conv layer always ran —
/// `im2col_into` + `matmul_into` + a bias pass — with `scratch` holding the
/// column matrix. The AVX2 backend replaces the whole composition for the
/// 3×3 / stride-1 / pad-1 shape every filter trunk uses: it copies the
/// input into a zero-padded image (`scratch`, a fraction of the column
/// matrix's size) and runs a register-blocked FMA kernel straight off it,
/// bias folded into the accumulator init. Non-3×3 specs fall back to
/// im2col + the backend's matmul.
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into_with(
    backend: KernelBackend,
    input: &[f32],
    h: usize,
    w: usize,
    spec: &ConvSpec,
    weight: &[f32],
    bias: &[f32],
    scratch: &mut Vec<f32>,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(weight.len(), spec.out_channels * spec.in_channels * spec.kernel * spec.kernel);
    debug_assert_eq!(bias.len(), spec.out_channels);
    #[cfg(target_arch = "x86_64")]
    if backend.is_supported() && spec.kernel == 3 && spec.stride == 1 && spec.padding == 1 {
        if backend == KernelBackend::Avx512 {
            // SAFETY: `is_supported()` confirmed AVX-512F/BW at runtime
            // (the callee's `target_feature` contract); the 3×3/stride-1/
            // pad-1 guard pins the shape the kernel's padded-scratch
            // indexing assumes, and slice sizes are debug-asserted above.
            unsafe {
                avx512::conv3x3_into(input, spec.in_channels, h, w, weight, spec.out_channels, bias, scratch, out)
            };
            return;
        }
        if backend == KernelBackend::Avx2 {
            // SAFETY: same contract as the AVX-512 arm with AVX2+FMA
            // confirmed by `is_supported()`.
            unsafe { avx2::conv3x3_into(input, spec.in_channels, h, w, weight, spec.out_channels, bias, scratch, out) };
            return;
        }
    }
    let (oh, ow) = spec.out_size(h, w);
    let ckk = spec.in_channels * spec.kernel * spec.kernel;
    im2col_into_with(backend, input, h, w, spec, scratch);
    matmul_into_with(backend, weight, spec.out_channels, ckk, scratch, oh * ow, out);
    for (co, &b) in bias.iter().enumerate() {
        for v in &mut out[co * oh * ow..(co + 1) * oh * ow] {
            *v += b;
        }
    }
}

/// In-place ReLU (`x.max(0.0)`) via the chosen backend. Output values are
/// identical to the scalar reference; only the sign of zero may differ
/// (the vector path writes `+0.0` for negative-zero inputs).
#[allow(unsafe_code)]
pub fn relu_in_place_with(backend: KernelBackend, data: &mut [f32]) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX-512F at runtime (the callee's
        // `target_feature` requirement).
        KernelBackend::Avx512 if backend.is_supported() => unsafe { avx512::relu_in_place(data) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX2 at runtime.
        KernelBackend::Avx2 if backend.is_supported() => unsafe { avx2::relu_in_place(data) },
        _ => {
            for v in data {
                *v = v.max(0.0);
            }
        }
    }
}

/// In-place LeakyReLU (`x >= 0 ? x : slope * x`) via the chosen backend.
/// Bit-identical on every backend: the vector path blends the same
/// per-element product the scalar branch computes.
#[allow(unsafe_code)]
pub fn leaky_relu_in_place_with(backend: KernelBackend, data: &mut [f32], slope: f32) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX-512F at runtime (the callee's
        // `target_feature` requirement).
        KernelBackend::Avx512 if backend.is_supported() => unsafe { avx512::leaky_relu_in_place(data, slope) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guard confirmed AVX2 at runtime.
        KernelBackend::Avx2 if backend.is_supported() => unsafe { avx2::leaky_relu_in_place(data, slope) },
        _ => {
            for v in data {
                if *v < 0.0 {
                    *v *= slope;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Auto-dispatched wrappers: what the layers call.
// ---------------------------------------------------------------------------

/// [`conv2d_into_with`] through the process-wide active backend.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    input: &[f32],
    h: usize,
    w: usize,
    spec: &ConvSpec,
    weight: &[f32],
    bias: &[f32],
    scratch: &mut Vec<f32>,
    out: &mut Vec<f32>,
) {
    conv2d_into_with(KernelBackend::active(), input, h, w, spec, weight, bias, scratch, out);
}

/// [`relu_in_place_with`] through the process-wide active backend.
pub fn relu_in_place(data: &mut [f32]) {
    relu_in_place_with(KernelBackend::active(), data);
}

/// [`leaky_relu_in_place_with`] through the process-wide active backend.
pub fn leaky_relu_in_place(data: &mut [f32], slope: f32) {
    leaky_relu_in_place_with(KernelBackend::active(), data, slope);
}

/// [`ops::matmul_into`] through the process-wide active backend.
pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut Vec<f32>) {
    matmul_into_with(KernelBackend::active(), a, m, k, b, n, out);
}

/// [`ops::matvec_into`] through the process-wide active backend.
pub fn matvec_into(a: &[f32], m: usize, k: usize, x: &[f32], out: &mut Vec<f32>) {
    matvec_into_with(KernelBackend::active(), a, m, k, x, out);
}

/// [`ops::im2col_into`] through the process-wide active backend.
pub fn im2col_into(input: &[f32], h: usize, w: usize, spec: &ConvSpec, out: &mut Vec<f32>) {
    im2col_into_with(KernelBackend::active(), input, h, w, spec, out);
}

/// [`ops::maxpool2d_into`] through the process-wide active backend.
pub fn maxpool2d_into(input: &[f32], c: usize, h: usize, w: usize, size: usize, out: &mut Vec<f32>) {
    maxpool2d_into_with(KernelBackend::active(), input, c, h, w, size, out);
}

/// [`ops::global_avg_pool_into`] through the process-wide active backend.
pub fn global_avg_pool_into(input: &[f32], c: usize, h: usize, w: usize, out: &mut Vec<f32>) {
    global_avg_pool_into_with(KernelBackend::active(), input, c, h, w, out);
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64).
//
// The matmul-shaped kernels use FMA register tiles — the per-element
// accumulation order differs from the scalar loop within the module-level
// ULP tolerance. The element-wise/comparison kernels (maxpool, gap,
// matvec, activations) keep the scalar order and stay bit-identical.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::*;

    // Safety: every function in this module requires AVX2 (+FMA for the
    // fused kernels); the dispatch layer only calls them after
    // `KernelBackend::is_supported()` runtime detection. Pointer
    // arithmetic stays inside the slices' bounds: block loops only run
    // while a full vector fits, with masked or scalar tails for the rest
    // (the fused conv's masked tails read from a scratch buffer padded
    // with 8 floats of slack for exactly that purpose).

    /// `out = A (m×k) · B (k×n)` with FMA register tiles: four output rows
    /// × 24 columns per pass, every streamed B vector feeding all four
    /// rows. Ascending-`k` accumulation from zero, fused multiply-add per
    /// step — deterministic, but not the scalar rounding sequence.
    // SAFETY: caller must guarantee AVX2+FMA (dispatch checks
    // `is_supported()`). All pointer arithmetic derives from `a`/`b`/`out`
    // and stays in bounds: `out` is resized to `m * n` first, row blocks
    // advance while `i + 4 <= m`, and the row kernels bound `j` by `n`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(a.len(), m * k, "matmul_into lhs size mismatch");
        debug_assert_eq!(b.len(), k * n, "matmul_into rhs size mismatch");
        out.clear();
        out.resize(m * n, 0.0);
        let bp = b.as_ptr();
        let ap = a.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= m {
            row_quad(ap.add(i * k), k, bp, n, op.add(i * n));
            i += 4;
        }
        while i < m {
            row_one(ap.add(i * k), k, bp, n, op.add(i * n));
            i += 1;
        }
    }

    /// Four output rows (`o..o+4`, weight rows contiguous at `a`).
    // SAFETY: caller (`matmul_into`) guarantees AVX2+FMA and that `a` has
    // 4 rows of `k` floats, `b` is `k × n`, and `o` has 4 rows of `n`
    // floats. Vector loads/stores run only while `j + 24 <= n` or
    // `j + 8 <= n`; the remainder is scalar.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_quad(a: *const f32, k: usize, b: *const f32, n: usize, o: *mut f32) {
        let (a0, a1, a2, a3) = (a, a.add(k), a.add(2 * k), a.add(3 * k));
        let (o0, o1, o2, o3) = (o, o.add(n), o.add(2 * n), o.add(3 * n));
        let mut j = 0;
        while j + 24 <= n {
            let mut x00 = _mm256_setzero_ps();
            let mut x01 = _mm256_setzero_ps();
            let mut x02 = _mm256_setzero_ps();
            let mut x10 = _mm256_setzero_ps();
            let mut x11 = _mm256_setzero_ps();
            let mut x12 = _mm256_setzero_ps();
            let mut x20 = _mm256_setzero_ps();
            let mut x21 = _mm256_setzero_ps();
            let mut x22 = _mm256_setzero_ps();
            let mut x30 = _mm256_setzero_ps();
            let mut x31 = _mm256_setzero_ps();
            let mut x32 = _mm256_setzero_ps();
            for kk in 0..k {
                let bq = b.add(kk * n + j);
                let b0 = _mm256_loadu_ps(bq);
                let b1 = _mm256_loadu_ps(bq.add(8));
                let b2 = _mm256_loadu_ps(bq.add(16));
                let c0 = _mm256_broadcast_ss(&*a0.add(kk));
                x00 = _mm256_fmadd_ps(c0, b0, x00);
                x01 = _mm256_fmadd_ps(c0, b1, x01);
                x02 = _mm256_fmadd_ps(c0, b2, x02);
                let c1 = _mm256_broadcast_ss(&*a1.add(kk));
                x10 = _mm256_fmadd_ps(c1, b0, x10);
                x11 = _mm256_fmadd_ps(c1, b1, x11);
                x12 = _mm256_fmadd_ps(c1, b2, x12);
                let c2 = _mm256_broadcast_ss(&*a2.add(kk));
                x20 = _mm256_fmadd_ps(c2, b0, x20);
                x21 = _mm256_fmadd_ps(c2, b1, x21);
                x22 = _mm256_fmadd_ps(c2, b2, x22);
                let c3 = _mm256_broadcast_ss(&*a3.add(kk));
                x30 = _mm256_fmadd_ps(c3, b0, x30);
                x31 = _mm256_fmadd_ps(c3, b1, x31);
                x32 = _mm256_fmadd_ps(c3, b2, x32);
            }
            _mm256_storeu_ps(o0.add(j), x00);
            _mm256_storeu_ps(o0.add(j + 8), x01);
            _mm256_storeu_ps(o0.add(j + 16), x02);
            _mm256_storeu_ps(o1.add(j), x10);
            _mm256_storeu_ps(o1.add(j + 8), x11);
            _mm256_storeu_ps(o1.add(j + 16), x12);
            _mm256_storeu_ps(o2.add(j), x20);
            _mm256_storeu_ps(o2.add(j + 8), x21);
            _mm256_storeu_ps(o2.add(j + 16), x22);
            _mm256_storeu_ps(o3.add(j), x30);
            _mm256_storeu_ps(o3.add(j + 8), x31);
            _mm256_storeu_ps(o3.add(j + 16), x32);
            j += 24;
        }
        while j + 8 <= n {
            let mut x0 = _mm256_setzero_ps();
            let mut x1 = _mm256_setzero_ps();
            let mut x2 = _mm256_setzero_ps();
            let mut x3 = _mm256_setzero_ps();
            for kk in 0..k {
                let bv = _mm256_loadu_ps(b.add(kk * n + j));
                x0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(kk)), bv, x0);
                x1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(kk)), bv, x1);
                x2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a2.add(kk)), bv, x2);
                x3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a3.add(kk)), bv, x3);
            }
            _mm256_storeu_ps(o0.add(j), x0);
            _mm256_storeu_ps(o1.add(j), x1);
            _mm256_storeu_ps(o2.add(j), x2);
            _mm256_storeu_ps(o3.add(j), x3);
            j += 8;
        }
        while j < n {
            let mut s0 = 0.0f32;
            let mut s1 = 0.0f32;
            let mut s2 = 0.0f32;
            let mut s3 = 0.0f32;
            for kk in 0..k {
                let bv = *b.add(kk * n + j);
                // mul_add lowers to scalar FMA inside this target_feature
                // scope, matching the vector lanes' one-rounding step.
                s0 = (*a0.add(kk)).mul_add(bv, s0);
                s1 = (*a1.add(kk)).mul_add(bv, s1);
                s2 = (*a2.add(kk)).mul_add(bv, s2);
                s3 = (*a3.add(kk)).mul_add(bv, s3);
            }
            *o0.add(j) = s0;
            *o1.add(j) = s1;
            *o2.add(j) = s2;
            *o3.add(j) = s3;
            j += 1;
        }
    }

    /// One remaining output row (`m % 4` tail).
    // SAFETY: caller guarantees AVX2+FMA, `a0` points at `k` floats, `b`
    // is `k × n`, `o0` at `n` floats. Vector width only while
    // `j + 8 <= n`; scalar tail after.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_one(a0: *const f32, k: usize, b: *const f32, n: usize, o0: *mut f32) {
        let mut j = 0;
        while j + 8 <= n {
            let mut x = _mm256_setzero_ps();
            for kk in 0..k {
                x = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(kk)), _mm256_loadu_ps(b.add(kk * n + j)), x);
            }
            _mm256_storeu_ps(o0.add(j), x);
            j += 8;
        }
        while j < n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s = (*a0.add(kk)).mul_add(*b.add(kk * n + j), s);
            }
            *o0.add(j) = s;
            j += 1;
        }
    }

    /// All-ones prefix mask for an `rem`-lane (1..=8) partial store.
    // SAFETY: caller guarantees AVX2; the load reads the local 8-lane
    // stack array, always fully initialised.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        debug_assert!((1..=8).contains(&rem));
        let mut lanes = [0i32; 8];
        for l in lanes.iter_mut().take(rem) {
            *l = -1;
        }
        _mm256_loadu_si256(lanes.as_ptr() as *const __m256i)
    }

    /// Fused 3×3 / stride-1 / pad-1 convolution with bias: the shape every
    /// filter trunk and branch conv uses. Copies the input into a
    /// zero-padded image (`padded`, with 8 floats of slack so masked
    /// column tails can load full vectors) and accumulates straight off
    /// it with FMA tiles of four output channels × 16 pixels — no im2col
    /// matrix is ever materialised, so B traffic is the (L1/L2-resident)
    /// input image instead of a `9×` unfolded copy of it.
    // SAFETY: caller must guarantee AVX2+FMA (dispatch checks
    // `is_supported()`); slice sizes are debug-asserted, `out` is resized
    // to `m * h * w` before any raw store, and `padded` carries 8 floats
    // of slack past the image so masked column-tail loads of a full
    // vector stay inside the allocation.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn conv3x3_into(
        input: &[f32],
        c: usize,
        h: usize,
        w: usize,
        weight: &[f32],
        m: usize,
        bias: &[f32],
        padded: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(input.len(), c * h * w, "conv3x3_into input size mismatch");
        debug_assert_eq!(weight.len(), m * c * 9, "conv3x3_into weight size mismatch");
        debug_assert_eq!(bias.len(), m, "conv3x3_into bias size mismatch");
        let (ph, pw) = (h + 2, w + 2);
        let phpw = ph * pw;
        padded.clear();
        padded.resize(c * phpw + 8, 0.0);
        for ch in 0..c {
            for y in 0..h {
                let dst = ch * phpw + (y + 1) * pw + 1;
                padded[dst..dst + w].copy_from_slice(&input[ch * h * w + y * w..ch * h * w + (y + 1) * w]);
            }
        }
        out.clear();
        out.resize(m * h * w, 0.0);
        let pp = padded.as_ptr();
        let op = out.as_mut_ptr();
        let mut o = 0;
        while o + 4 <= m {
            conv3x3_rows4(pp, c, h, w, pw, phpw, weight, bias, o, op);
            o += 4;
        }
        while o < m {
            conv3x3_rows1(pp, c, h, w, pw, phpw, weight, bias, o, op);
            o += 1;
        }
    }

    /// Four output channels of the fused conv (`o..o+4`).
    // SAFETY: caller (`conv3x3_into`) guarantees AVX2+FMA, `o + 4 <= m`,
    // `pp` points at the padded image with 8 floats of slack (full-vector
    // loads past a column tail stay in the allocation), and `op` has
    // `m * h * w` floats; tail-column stores are masked to `rem` lanes.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn conv3x3_rows4(
        pp: *const f32,
        c: usize,
        h: usize,
        w: usize,
        pw: usize,
        phpw: usize,
        weight: &[f32],
        bias: &[f32],
        o: usize,
        op: *mut f32,
    ) {
        let k = c * 9;
        let w0 = weight.as_ptr().add(o * k);
        let (w1, w2, w3) = (w0.add(k), w0.add(2 * k), w0.add(3 * k));
        let o0 = op.add(o * h * w);
        let (o1, o2, o3) = (o0.add(h * w), o0.add(2 * h * w), o0.add(3 * h * w));
        for y in 0..h {
            let orow = y * w;
            let mut x = 0;
            while x + 16 <= w {
                let mut x00 = _mm256_set1_ps(bias[o]);
                let mut x01 = _mm256_set1_ps(bias[o]);
                let mut x10 = _mm256_set1_ps(bias[o + 1]);
                let mut x11 = _mm256_set1_ps(bias[o + 1]);
                let mut x20 = _mm256_set1_ps(bias[o + 2]);
                let mut x21 = _mm256_set1_ps(bias[o + 2]);
                let mut x30 = _mm256_set1_ps(bias[o + 3]);
                let mut x31 = _mm256_set1_ps(bias[o + 3]);
                let mut r = 0;
                for ch in 0..c {
                    // Top-left of the receptive field for output (y, x) in
                    // the padded image.
                    let rf = pp.add(ch * phpw + y * pw + x);
                    for ky in 0..3 {
                        for kx in 0..3 {
                            let off = ky * pw + kx;
                            let b0 = _mm256_loadu_ps(rf.add(off));
                            let b1 = _mm256_loadu_ps(rf.add(off + 8));
                            let c0 = _mm256_broadcast_ss(&*w0.add(r));
                            x00 = _mm256_fmadd_ps(c0, b0, x00);
                            x01 = _mm256_fmadd_ps(c0, b1, x01);
                            let c1 = _mm256_broadcast_ss(&*w1.add(r));
                            x10 = _mm256_fmadd_ps(c1, b0, x10);
                            x11 = _mm256_fmadd_ps(c1, b1, x11);
                            let c2 = _mm256_broadcast_ss(&*w2.add(r));
                            x20 = _mm256_fmadd_ps(c2, b0, x20);
                            x21 = _mm256_fmadd_ps(c2, b1, x21);
                            let c3 = _mm256_broadcast_ss(&*w3.add(r));
                            x30 = _mm256_fmadd_ps(c3, b0, x30);
                            x31 = _mm256_fmadd_ps(c3, b1, x31);
                            r += 1;
                        }
                    }
                }
                _mm256_storeu_ps(o0.add(orow + x), x00);
                _mm256_storeu_ps(o0.add(orow + x + 8), x01);
                _mm256_storeu_ps(o1.add(orow + x), x10);
                _mm256_storeu_ps(o1.add(orow + x + 8), x11);
                _mm256_storeu_ps(o2.add(orow + x), x20);
                _mm256_storeu_ps(o2.add(orow + x + 8), x21);
                _mm256_storeu_ps(o3.add(orow + x), x30);
                _mm256_storeu_ps(o3.add(orow + x + 8), x31);
                x += 16;
            }
            while x < w {
                let rem = (w - x).min(8);
                let mask = tail_mask(rem);
                let mut x0 = _mm256_set1_ps(bias[o]);
                let mut x1 = _mm256_set1_ps(bias[o + 1]);
                let mut x2 = _mm256_set1_ps(bias[o + 2]);
                let mut x3 = _mm256_set1_ps(bias[o + 3]);
                let mut r = 0;
                for ch in 0..c {
                    let rf = pp.add(ch * phpw + y * pw + x);
                    for ky in 0..3 {
                        for kx in 0..3 {
                            // Full-vector load; lanes past `rem` read the
                            // padded buffer's slack and are masked away at
                            // the store.
                            let bv = _mm256_loadu_ps(rf.add(ky * pw + kx));
                            x0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*w0.add(r)), bv, x0);
                            x1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*w1.add(r)), bv, x1);
                            x2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*w2.add(r)), bv, x2);
                            x3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*w3.add(r)), bv, x3);
                            r += 1;
                        }
                    }
                }
                _mm256_maskstore_ps(o0.add(orow + x), mask, x0);
                _mm256_maskstore_ps(o1.add(orow + x), mask, x1);
                _mm256_maskstore_ps(o2.add(orow + x), mask, x2);
                _mm256_maskstore_ps(o3.add(orow + x), mask, x3);
                x += rem;
            }
        }
    }

    /// One remaining output channel of the fused conv (`m % 4` tail).
    // SAFETY: caller (`conv3x3_into`) guarantees AVX2+FMA, `pp` points at
    // the padded image with 8 floats of slack (full-vector loads past a
    // column tail stay in the allocation), and `op` has `m * h * w`
    // floats; stores are masked to `rem` lanes.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn conv3x3_rows1(
        pp: *const f32,
        c: usize,
        h: usize,
        w: usize,
        pw: usize,
        phpw: usize,
        weight: &[f32],
        bias: &[f32],
        o: usize,
        op: *mut f32,
    ) {
        let k = c * 9;
        let w0 = weight.as_ptr().add(o * k);
        let o0 = op.add(o * h * w);
        for y in 0..h {
            let orow = y * w;
            let mut x = 0;
            while x < w {
                let rem = (w - x).min(8);
                let mut acc = _mm256_set1_ps(bias[o]);
                let mut r = 0;
                for ch in 0..c {
                    let rf = pp.add(ch * phpw + y * pw + x);
                    for ky in 0..3 {
                        for kx in 0..3 {
                            let bv = _mm256_loadu_ps(rf.add(ky * pw + kx));
                            acc = _mm256_fmadd_ps(_mm256_broadcast_ss(&*w0.add(r)), bv, acc);
                            r += 1;
                        }
                    }
                }
                if rem == 8 {
                    _mm256_storeu_ps(o0.add(orow + x), acc);
                } else {
                    _mm256_maskstore_ps(o0.add(orow + x), tail_mask(rem), acc);
                }
                x += rem;
            }
        }
    }

    /// In-place ReLU. `max_ps(v, 0)` returns the second operand for NaN
    /// and `-0.0` inputs, matching scalar `f32::max(0.0)` values (the sign
    /// of a zero result may differ; the values compare equal).
    // SAFETY: caller must guarantee AVX2; loads/stores stay inside `data`
    // (vector width only while `i + 8 <= n`, scalar tail after).
    #[target_feature(enable = "avx2")]
    pub unsafe fn relu_in_place(data: &mut [f32]) {
        let z = _mm256_setzero_ps();
        let n = data.len();
        let p = data.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(p.add(i), _mm256_max_ps(_mm256_loadu_ps(p.add(i)), z));
            i += 8;
        }
        for i in i..n {
            let v = *p.add(i);
            *p.add(i) = v.max(0.0);
        }
    }

    /// In-place LeakyReLU: blends `slope * x` under `x` on a `>= 0`
    /// compare — the scalar branch's exact per-element arithmetic.
    // SAFETY: caller must guarantee AVX2; loads/stores stay inside `data`
    // (vector width only while `i + 8 <= n`, scalar tail after).
    #[target_feature(enable = "avx2")]
    pub unsafe fn leaky_relu_in_place(data: &mut [f32], slope: f32) {
        let z = _mm256_setzero_ps();
        let vs = _mm256_set1_ps(slope);
        let n = data.len();
        let p = data.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(p.add(i));
            let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(v, z);
            _mm256_storeu_ps(p.add(i), _mm256_blendv_ps(_mm256_mul_ps(v, vs), v, ge));
            i += 8;
        }
        for i in i..n {
            let v = *p.add(i);
            if v < 0.0 {
                *p.add(i) = v * slope;
            }
        }
    }

    /// `y = A (m×k) · x`: eight output rows per pass, gathering one column
    /// of `A` per `kk` step. Per lane: the scalar fold `acc += a * x` in
    /// ascending `kk` (no zero skipping — the scalar reference has none).
    // SAFETY: caller must guarantee AVX2. Gathers run only when
    // `k <= i32::MAX / 8` so every 32-bit index `7 * stride + kk` stays
    // positive and inside `a`'s `m * k` floats (`i + 8 <= m` bounds the
    // rows); leftover rows use safe slice arithmetic.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_into(a: &[f32], m: usize, k: usize, x: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(a.len(), m * k, "matvec_into size mismatch");
        debug_assert_eq!(x.len(), k, "matvec_into dimension mismatch");
        out.clear();
        out.resize(m, 0.0);
        let ap = a.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        if k <= (i32::MAX as usize) / 8 {
            let stride = k as i32;
            let vindex =
                _mm256_setr_epi32(0, stride, 2 * stride, 3 * stride, 4 * stride, 5 * stride, 6 * stride, 7 * stride);
            while i + 8 <= m {
                let base = ap.add(i * k);
                let mut acc = _mm256_setzero_ps();
                for (kk, &xv) in x.iter().enumerate() {
                    let col = _mm256_i32gather_ps::<4>(base.add(kk), vindex);
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(col, _mm256_set1_ps(xv)));
                }
                _mm256_storeu_ps(op.add(i), acc);
                i += 8;
            }
        }
        for row in i..m {
            out[row] = a[row * k..(row + 1) * k].iter().zip(x).map(|(a, b)| a * b).sum::<f32>();
        }
    }

    /// 2×2 max pooling, eight output columns per pass. The four window
    /// positions are visited in the scalar scan order and compared with the
    /// same `v > best` / keep-first semantics (`GT_OQ` compare + blend), so
    /// results are bit-identical even around `-0.0` and NaN.
    // SAFETY: caller must guarantee AVX2. `h`/`w` divisibility is
    // asserted, `out` is resized to `c * oh * ow` first, and the 16-wide
    // input loads run only while `ox + 8 <= ow` (i.e. `2*ox + 16 <= w`);
    // the remainder is scalar indexing.
    #[target_feature(enable = "avx2")]
    pub unsafe fn maxpool2d_2x2_into(input: &[f32], c: usize, h: usize, w: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(input.len(), c * h * w, "maxpool2d_into input size mismatch");
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "maxpool2d requires divisible spatial dims ({}x{} by 2)",
            h,
            w
        );
        let (oh, ow) = (h / 2, w / 2);
        out.clear();
        out.resize(c * oh * ow, 0.0);
        let ip = input.as_ptr();
        let op = out.as_mut_ptr();
        for ch in 0..c {
            for oy in 0..oh {
                let r0 = ip.add(ch * h * w + (2 * oy) * w);
                let r1 = r0.add(w);
                let orow = op.add(ch * oh * ow + oy * ow);
                let mut ox = 0;
                while ox + 8 <= ow {
                    let (e0, d0) = deinterleave(_mm256_loadu_ps(r0.add(2 * ox)), _mm256_loadu_ps(r0.add(2 * ox + 8)));
                    let (e1, d1) = deinterleave(_mm256_loadu_ps(r1.add(2 * ox)), _mm256_loadu_ps(r1.add(2 * ox + 8)));
                    let mut best = _mm256_set1_ps(f32::NEG_INFINITY);
                    for v in [e0, d0, e1, d1] {
                        let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(v, best);
                        best = _mm256_blendv_ps(best, v, gt);
                    }
                    _mm256_storeu_ps(orow.add(ox), best);
                    ox += 8;
                }
                for ox in ox..ow {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let v = *ip.add(ch * h * w + (oy * 2 + dy) * w + ox * 2 + dx);
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    *orow.add(ox) = best;
                }
            }
        }
    }

    /// Splits two consecutive 8-lane loads covering 16 columns into their
    /// even- and odd-column halves.
    // SAFETY: caller must guarantee AVX2; pure register shuffles, no
    // memory access.
    #[target_feature(enable = "avx2")]
    unsafe fn deinterleave(a: __m256, b: __m256) -> (__m256, __m256) {
        let lo = _mm256_shuffle_ps::<0b10_00_10_00>(a, b);
        let hi = _mm256_shuffle_ps::<0b11_01_11_01>(a, b);
        let even = _mm256_castpd_ps(_mm256_permute4x64_pd::<0xD8>(_mm256_castps_pd(lo)));
        let odd = _mm256_castpd_ps(_mm256_permute4x64_pd::<0xD8>(_mm256_castps_pd(hi)));
        (even, odd)
    }

    /// Global average pooling, eight channels per pass via strided gathers.
    /// Per lane: the scalar per-channel ascending sum, then one IEEE divide.
    // SAFETY: caller must guarantee AVX2. Gathers run only when
    // `hw <= i32::MAX / 8` so indices fit i32 and stay inside `input`'s
    // `c * h * w` floats (`ch + 8 <= c` bounds the channels); leftover
    // channels use safe slice arithmetic.
    #[target_feature(enable = "avx2")]
    pub unsafe fn global_avg_pool_into(input: &[f32], c: usize, h: usize, w: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(input.len(), c * h * w, "global_avg_pool_into input size mismatch");
        let hw = h * w;
        let area = hw as f32;
        out.clear();
        out.resize(c, 0.0);
        let ip = input.as_ptr();
        let op = out.as_mut_ptr();
        let mut ch = 0;
        if hw > 0 && hw <= (i32::MAX as usize) / 8 {
            let stride = hw as i32;
            let vindex =
                _mm256_setr_epi32(0, stride, 2 * stride, 3 * stride, 4 * stride, 5 * stride, 6 * stride, 7 * stride);
            let varea = _mm256_set1_ps(area);
            while ch + 8 <= c {
                let base = ip.add(ch * hw);
                let mut acc = _mm256_setzero_ps();
                for i in 0..hw {
                    acc = _mm256_add_ps(acc, _mm256_i32gather_ps::<4>(base.add(i), vindex));
                }
                _mm256_storeu_ps(op.add(ch), _mm256_div_ps(acc, varea));
                ch += 8;
            }
        }
        for ch in ch..c {
            out[ch] = input[ch * hw..(ch + 1) * hw].iter().sum::<f32>() / area;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512 kernels (x86_64).
//
// Same equivalence contract as AVX2 (FMA within the module-level ULP
// tolerance for matmul-shaped kernels), but with 16-lane vectors, twice
// the register file and native masked loads/stores, so tails never fall
// back to scalar arithmetic. Element-wise kernels (activations here;
// maxpool/gap/matvec delegate to the AVX2 module) stay bit-identical to
// the scalar reference.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx512 {
    use std::arch::x86_64::*;

    // Safety: every function requires AVX-512F; the dispatch layer only
    // calls them after `KernelBackend::is_supported()` runtime detection.
    // Masked loads/stores never touch masked-out lanes, and the fused
    // conv's full-width tail loads read from a scratch buffer padded with
    // 16 floats of slack.

    /// All-ones prefix mask for an `rem`-lane (0..=16) partial vector.
    #[inline]
    fn prefix_mask(rem: usize) -> __mmask16 {
        debug_assert!(rem <= 16);
        if rem >= 16 {
            !0
        } else {
            (1u16 << rem) - 1
        }
    }

    /// `out = A (m×k) · B (k×n)` with zmm FMA tiles: four output rows ×
    /// 48 columns per pass, 16-wide then masked tails. Same rounding
    /// caveat as the AVX2 twin.
    // SAFETY: caller must guarantee AVX-512F (dispatch checks
    // `is_supported()`). `out` is resized to `m * n` before any raw
    // store; row blocks advance while `i + 4 <= m` and the row kernels
    // bound `j` by `n` with masked tails.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(a.len(), m * k, "matmul_into lhs size mismatch");
        debug_assert_eq!(b.len(), k * n, "matmul_into rhs size mismatch");
        out.clear();
        out.resize(m * n, 0.0);
        let bp = b.as_ptr();
        let ap = a.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= m {
            row_quad(ap.add(i * k), k, bp, n, op.add(i * n));
            i += 4;
        }
        while i < m {
            row_one(ap.add(i * k), k, bp, n, op.add(i * n));
            i += 1;
        }
    }

    /// Four output rows (`o..o+4`, weight rows contiguous at `a`).
    // SAFETY: caller (`matmul_into`) guarantees AVX-512F and that `a` has
    // 4 rows of `k` floats, `b` is `k × n`, and `o` has 4 rows of `n`
    // floats. Full-width access only while `j + 48 <= n`; the tail loop
    // masks every load and store to `rem` lanes.
    #[target_feature(enable = "avx512f")]
    unsafe fn row_quad(a: *const f32, k: usize, b: *const f32, n: usize, o: *mut f32) {
        let (a0, a1, a2, a3) = (a, a.add(k), a.add(2 * k), a.add(3 * k));
        let (o0, o1, o2, o3) = (o, o.add(n), o.add(2 * n), o.add(3 * n));
        let mut j = 0;
        while j + 48 <= n {
            let mut x00 = _mm512_setzero_ps();
            let mut x01 = _mm512_setzero_ps();
            let mut x02 = _mm512_setzero_ps();
            let mut x10 = _mm512_setzero_ps();
            let mut x11 = _mm512_setzero_ps();
            let mut x12 = _mm512_setzero_ps();
            let mut x20 = _mm512_setzero_ps();
            let mut x21 = _mm512_setzero_ps();
            let mut x22 = _mm512_setzero_ps();
            let mut x30 = _mm512_setzero_ps();
            let mut x31 = _mm512_setzero_ps();
            let mut x32 = _mm512_setzero_ps();
            for kk in 0..k {
                let bq = b.add(kk * n + j);
                let b0 = _mm512_loadu_ps(bq);
                let b1 = _mm512_loadu_ps(bq.add(16));
                let b2 = _mm512_loadu_ps(bq.add(32));
                let c0 = _mm512_set1_ps(*a0.add(kk));
                x00 = _mm512_fmadd_ps(c0, b0, x00);
                x01 = _mm512_fmadd_ps(c0, b1, x01);
                x02 = _mm512_fmadd_ps(c0, b2, x02);
                let c1 = _mm512_set1_ps(*a1.add(kk));
                x10 = _mm512_fmadd_ps(c1, b0, x10);
                x11 = _mm512_fmadd_ps(c1, b1, x11);
                x12 = _mm512_fmadd_ps(c1, b2, x12);
                let c2 = _mm512_set1_ps(*a2.add(kk));
                x20 = _mm512_fmadd_ps(c2, b0, x20);
                x21 = _mm512_fmadd_ps(c2, b1, x21);
                x22 = _mm512_fmadd_ps(c2, b2, x22);
                let c3 = _mm512_set1_ps(*a3.add(kk));
                x30 = _mm512_fmadd_ps(c3, b0, x30);
                x31 = _mm512_fmadd_ps(c3, b1, x31);
                x32 = _mm512_fmadd_ps(c3, b2, x32);
            }
            _mm512_storeu_ps(o0.add(j), x00);
            _mm512_storeu_ps(o0.add(j + 16), x01);
            _mm512_storeu_ps(o0.add(j + 32), x02);
            _mm512_storeu_ps(o1.add(j), x10);
            _mm512_storeu_ps(o1.add(j + 16), x11);
            _mm512_storeu_ps(o1.add(j + 32), x12);
            _mm512_storeu_ps(o2.add(j), x20);
            _mm512_storeu_ps(o2.add(j + 16), x21);
            _mm512_storeu_ps(o2.add(j + 32), x22);
            _mm512_storeu_ps(o3.add(j), x30);
            _mm512_storeu_ps(o3.add(j + 16), x31);
            _mm512_storeu_ps(o3.add(j + 32), x32);
            j += 48;
        }
        while j < n {
            let rem = (n - j).min(16);
            let mask = prefix_mask(rem);
            let mut x0 = _mm512_setzero_ps();
            let mut x1 = _mm512_setzero_ps();
            let mut x2 = _mm512_setzero_ps();
            let mut x3 = _mm512_setzero_ps();
            for kk in 0..k {
                // Masked-out lanes load as 0.0 and never reach the store,
                // so the live lanes round exactly like the full-width
                // tiles.
                let bv = _mm512_maskz_loadu_ps(mask, b.add(kk * n + j));
                x0 = _mm512_fmadd_ps(_mm512_set1_ps(*a0.add(kk)), bv, x0);
                x1 = _mm512_fmadd_ps(_mm512_set1_ps(*a1.add(kk)), bv, x1);
                x2 = _mm512_fmadd_ps(_mm512_set1_ps(*a2.add(kk)), bv, x2);
                x3 = _mm512_fmadd_ps(_mm512_set1_ps(*a3.add(kk)), bv, x3);
            }
            _mm512_mask_storeu_ps(o0.add(j), mask, x0);
            _mm512_mask_storeu_ps(o1.add(j), mask, x1);
            _mm512_mask_storeu_ps(o2.add(j), mask, x2);
            _mm512_mask_storeu_ps(o3.add(j), mask, x3);
            j += rem;
        }
    }

    /// One remaining output row (`m % 4` tail).
    // SAFETY: caller guarantees AVX-512F, `a0` points at `k` floats, `b`
    // is `k × n`, `o0` at `n` floats; every load and store is masked to
    // `rem` lanes.
    #[target_feature(enable = "avx512f")]
    unsafe fn row_one(a0: *const f32, k: usize, b: *const f32, n: usize, o0: *mut f32) {
        let mut j = 0;
        while j < n {
            let rem = (n - j).min(16);
            let mask = prefix_mask(rem);
            let mut x = _mm512_setzero_ps();
            for kk in 0..k {
                let bv = _mm512_maskz_loadu_ps(mask, b.add(kk * n + j));
                x = _mm512_fmadd_ps(_mm512_set1_ps(*a0.add(kk)), bv, x);
            }
            _mm512_mask_storeu_ps(o0.add(j), mask, x);
            j += rem;
        }
    }

    /// Fused 3×3 / stride-1 / pad-1 convolution with bias — the zmm twin
    /// of [`super::avx2::conv3x3_into`]. Works from a zero-padded input
    /// copy (16 floats of slack for full-width tail loads) and blocks
    /// eight output channels of the fused conv per pass: 32- and 16-pixel
    /// tiles plus a masked tail, so the whole output is written by vector
    /// stores.
    // SAFETY: caller must guarantee AVX-512F (dispatch checks
    // `is_supported()`); slice sizes are debug-asserted, `out` is resized
    // to `m * h * w` before any raw store, and `padded` carries 16 floats
    // of slack past the image so full-width tail loads stay inside the
    // allocation.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn conv3x3_into(
        input: &[f32],
        c: usize,
        h: usize,
        w: usize,
        weight: &[f32],
        m: usize,
        bias: &[f32],
        padded: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(input.len(), c * h * w, "conv3x3_into input size mismatch");
        debug_assert_eq!(weight.len(), m * c * 9, "conv3x3_into weight size mismatch");
        debug_assert_eq!(bias.len(), m, "conv3x3_into bias size mismatch");
        let (ph, pw) = (h + 2, w + 2);
        let phpw = ph * pw;
        padded.clear();
        padded.resize(c * phpw + 16, 0.0);
        for ch in 0..c {
            for y in 0..h {
                let dst = ch * phpw + (y + 1) * pw + 1;
                padded[dst..dst + w].copy_from_slice(&input[ch * h * w + y * w..ch * h * w + (y + 1) * w]);
            }
        }
        out.clear();
        out.resize(m * h * w, 0.0);
        let pp = padded.as_ptr();
        let op = out.as_mut_ptr();
        let mut o = 0;
        while o + 8 <= m {
            conv3x3_rows8(pp, c, h, w, pw, phpw, weight, bias, o, op);
            o += 8;
        }
        while o < m {
            conv3x3_rows1(pp, c, h, w, pw, phpw, weight, bias, o, op);
            o += 1;
        }
    }

    /// Eight output channels of the fused conv (`o..o+8`).
    // SAFETY: caller (`conv3x3_into`) guarantees AVX-512F, `o + 8 <= m`,
    // `pp` points at the padded image with 16 floats of slack (full-width
    // loads past a column tail stay in the allocation), and `op` has
    // `m * h * w` floats; tail-column stores are masked to `rem` lanes.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn conv3x3_rows8(
        pp: *const f32,
        c: usize,
        h: usize,
        w: usize,
        pw: usize,
        phpw: usize,
        weight: &[f32],
        bias: &[f32],
        o: usize,
        op: *mut f32,
    ) {
        let k = c * 9;
        let wp = weight.as_ptr().add(o * k);
        let ob = op.add(o * h * w);
        for y in 0..h {
            let orow = y * w;
            let mut x = 0;
            // 8 channels × 32 pixels: 16 accumulators, FMA-bound.
            while x + 32 <= w {
                let mut x0a = _mm512_set1_ps(bias[o]);
                let mut x0b = _mm512_set1_ps(bias[o]);
                let mut x1a = _mm512_set1_ps(bias[o + 1]);
                let mut x1b = _mm512_set1_ps(bias[o + 1]);
                let mut x2a = _mm512_set1_ps(bias[o + 2]);
                let mut x2b = _mm512_set1_ps(bias[o + 2]);
                let mut x3a = _mm512_set1_ps(bias[o + 3]);
                let mut x3b = _mm512_set1_ps(bias[o + 3]);
                let mut x4a = _mm512_set1_ps(bias[o + 4]);
                let mut x4b = _mm512_set1_ps(bias[o + 4]);
                let mut x5a = _mm512_set1_ps(bias[o + 5]);
                let mut x5b = _mm512_set1_ps(bias[o + 5]);
                let mut x6a = _mm512_set1_ps(bias[o + 6]);
                let mut x6b = _mm512_set1_ps(bias[o + 6]);
                let mut x7a = _mm512_set1_ps(bias[o + 7]);
                let mut x7b = _mm512_set1_ps(bias[o + 7]);
                let mut r = 0;
                for ch in 0..c {
                    let rf = pp.add(ch * phpw + y * pw + x);
                    for ky in 0..3 {
                        for kx in 0..3 {
                            let off = ky * pw + kx;
                            let ba = _mm512_loadu_ps(rf.add(off));
                            let bb = _mm512_loadu_ps(rf.add(off + 16));
                            let c0 = _mm512_set1_ps(*wp.add(r));
                            x0a = _mm512_fmadd_ps(c0, ba, x0a);
                            x0b = _mm512_fmadd_ps(c0, bb, x0b);
                            let c1 = _mm512_set1_ps(*wp.add(k + r));
                            x1a = _mm512_fmadd_ps(c1, ba, x1a);
                            x1b = _mm512_fmadd_ps(c1, bb, x1b);
                            let c2 = _mm512_set1_ps(*wp.add(2 * k + r));
                            x2a = _mm512_fmadd_ps(c2, ba, x2a);
                            x2b = _mm512_fmadd_ps(c2, bb, x2b);
                            let c3 = _mm512_set1_ps(*wp.add(3 * k + r));
                            x3a = _mm512_fmadd_ps(c3, ba, x3a);
                            x3b = _mm512_fmadd_ps(c3, bb, x3b);
                            let c4 = _mm512_set1_ps(*wp.add(4 * k + r));
                            x4a = _mm512_fmadd_ps(c4, ba, x4a);
                            x4b = _mm512_fmadd_ps(c4, bb, x4b);
                            let c5 = _mm512_set1_ps(*wp.add(5 * k + r));
                            x5a = _mm512_fmadd_ps(c5, ba, x5a);
                            x5b = _mm512_fmadd_ps(c5, bb, x5b);
                            let c6 = _mm512_set1_ps(*wp.add(6 * k + r));
                            x6a = _mm512_fmadd_ps(c6, ba, x6a);
                            x6b = _mm512_fmadd_ps(c6, bb, x6b);
                            let c7 = _mm512_set1_ps(*wp.add(7 * k + r));
                            x7a = _mm512_fmadd_ps(c7, ba, x7a);
                            x7b = _mm512_fmadd_ps(c7, bb, x7b);
                            r += 1;
                        }
                    }
                }
                let hw = h * w;
                _mm512_storeu_ps(ob.add(orow + x), x0a);
                _mm512_storeu_ps(ob.add(orow + x + 16), x0b);
                _mm512_storeu_ps(ob.add(hw + orow + x), x1a);
                _mm512_storeu_ps(ob.add(hw + orow + x + 16), x1b);
                _mm512_storeu_ps(ob.add(2 * hw + orow + x), x2a);
                _mm512_storeu_ps(ob.add(2 * hw + orow + x + 16), x2b);
                _mm512_storeu_ps(ob.add(3 * hw + orow + x), x3a);
                _mm512_storeu_ps(ob.add(3 * hw + orow + x + 16), x3b);
                _mm512_storeu_ps(ob.add(4 * hw + orow + x), x4a);
                _mm512_storeu_ps(ob.add(4 * hw + orow + x + 16), x4b);
                _mm512_storeu_ps(ob.add(5 * hw + orow + x), x5a);
                _mm512_storeu_ps(ob.add(5 * hw + orow + x + 16), x5b);
                _mm512_storeu_ps(ob.add(6 * hw + orow + x), x6a);
                _mm512_storeu_ps(ob.add(6 * hw + orow + x + 16), x6b);
                _mm512_storeu_ps(ob.add(7 * hw + orow + x), x7a);
                _mm512_storeu_ps(ob.add(7 * hw + orow + x + 16), x7b);
                x += 32;
            }
            // 8 channels × ≤16 pixels (full or masked).
            while x < w {
                let rem = (w - x).min(16);
                let mask = prefix_mask(rem);
                let mut x0 = _mm512_set1_ps(bias[o]);
                let mut x1 = _mm512_set1_ps(bias[o + 1]);
                let mut x2 = _mm512_set1_ps(bias[o + 2]);
                let mut x3 = _mm512_set1_ps(bias[o + 3]);
                let mut x4 = _mm512_set1_ps(bias[o + 4]);
                let mut x5 = _mm512_set1_ps(bias[o + 5]);
                let mut x6 = _mm512_set1_ps(bias[o + 6]);
                let mut x7 = _mm512_set1_ps(bias[o + 7]);
                let mut r = 0;
                for ch in 0..c {
                    let rf = pp.add(ch * phpw + y * pw + x);
                    for ky in 0..3 {
                        for kx in 0..3 {
                            // Full-width load; lanes past `rem` read the
                            // padded buffer's slack and are masked away at
                            // the store.
                            let bv = _mm512_loadu_ps(rf.add(ky * pw + kx));
                            x0 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(r)), bv, x0);
                            x1 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(k + r)), bv, x1);
                            x2 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(2 * k + r)), bv, x2);
                            x3 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(3 * k + r)), bv, x3);
                            x4 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(4 * k + r)), bv, x4);
                            x5 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(5 * k + r)), bv, x5);
                            x6 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(6 * k + r)), bv, x6);
                            x7 = _mm512_fmadd_ps(_mm512_set1_ps(*wp.add(7 * k + r)), bv, x7);
                            r += 1;
                        }
                    }
                }
                let hw = h * w;
                _mm512_mask_storeu_ps(ob.add(orow + x), mask, x0);
                _mm512_mask_storeu_ps(ob.add(hw + orow + x), mask, x1);
                _mm512_mask_storeu_ps(ob.add(2 * hw + orow + x), mask, x2);
                _mm512_mask_storeu_ps(ob.add(3 * hw + orow + x), mask, x3);
                _mm512_mask_storeu_ps(ob.add(4 * hw + orow + x), mask, x4);
                _mm512_mask_storeu_ps(ob.add(5 * hw + orow + x), mask, x5);
                _mm512_mask_storeu_ps(ob.add(6 * hw + orow + x), mask, x6);
                _mm512_mask_storeu_ps(ob.add(7 * hw + orow + x), mask, x7);
                x += rem;
            }
        }
    }

    /// One remaining output channel of the fused conv (`m % 8` tail).
    // SAFETY: caller (`conv3x3_into`) guarantees AVX-512F, `pp` points at
    // the padded image with 16 floats of slack, and `op` has `m * h * w`
    // floats; stores are masked to `rem` lanes.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn conv3x3_rows1(
        pp: *const f32,
        c: usize,
        h: usize,
        w: usize,
        pw: usize,
        phpw: usize,
        weight: &[f32],
        bias: &[f32],
        o: usize,
        op: *mut f32,
    ) {
        let k = c * 9;
        let w0 = weight.as_ptr().add(o * k);
        let o0 = op.add(o * h * w);
        for y in 0..h {
            let orow = y * w;
            let mut x = 0;
            while x < w {
                let rem = (w - x).min(16);
                let mask = prefix_mask(rem);
                let mut acc = _mm512_set1_ps(bias[o]);
                let mut r = 0;
                for ch in 0..c {
                    let rf = pp.add(ch * phpw + y * pw + x);
                    for ky in 0..3 {
                        for kx in 0..3 {
                            let bv = _mm512_loadu_ps(rf.add(ky * pw + kx));
                            acc = _mm512_fmadd_ps(_mm512_set1_ps(*w0.add(r)), bv, acc);
                            r += 1;
                        }
                    }
                }
                _mm512_mask_storeu_ps(o0.add(orow + x), mask, acc);
                x += rem;
            }
        }
    }

    /// In-place ReLU; see the AVX2 twin for the NaN / sign-of-zero notes.
    // SAFETY: caller must guarantee AVX-512F; full-width access only
    // while `i + 16 <= n`, the tail masked to the remaining lanes.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn relu_in_place(data: &mut [f32]) {
        let z = _mm512_setzero_ps();
        let n = data.len();
        let p = data.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            _mm512_storeu_ps(p.add(i), _mm512_max_ps(_mm512_loadu_ps(p.add(i)), z));
            i += 16;
        }
        if i < n {
            let mask = prefix_mask(n - i);
            _mm512_mask_storeu_ps(p.add(i), mask, _mm512_max_ps(_mm512_maskz_loadu_ps(mask, p.add(i)), z));
        }
    }

    /// In-place LeakyReLU: mask-selects `slope * x` under `x` on a `>= 0`
    /// compare — the scalar branch's exact per-element arithmetic.
    // SAFETY: caller must guarantee AVX-512F; full-width access only
    // while `i + 16 <= n`, the tail masked to the remaining lanes.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn leaky_relu_in_place(data: &mut [f32], slope: f32) {
        let z = _mm512_setzero_ps();
        let vs = _mm512_set1_ps(slope);
        let n = data.len();
        let p = data.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm512_loadu_ps(p.add(i));
            let ge = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(v, z);
            _mm512_storeu_ps(p.add(i), _mm512_mask_blend_ps(ge, _mm512_mul_ps(v, vs), v));
            i += 16;
        }
        if i < n {
            let mask = prefix_mask(n - i);
            let v = _mm512_maskz_loadu_ps(mask, p.add(i));
            let ge = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(v, z);
            _mm512_mask_storeu_ps(p.add(i), mask, _mm512_mask_blend_ps(ge, _mm512_mul_ps(v, vs), v));
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64).
//
// NEON is a baseline feature of aarch64, so no runtime detection or
// `target_feature` gating is needed and the kernels stay safe apart from
// the raw-pointer loads. Only the dominant kernel (matmul) is vectorised;
// the others delegate to scalar, which the dispatch table encodes.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    use std::arch::aarch64::*;

    /// `out = A (m×k) · B (k×n)` with 4-lane tiles; per element the scalar
    /// ascending-`kk` skip-zero multiply + add order, so NEON stays
    /// bit-identical to the scalar reference (unlike the FMA-based AVX2
    /// path, which only promises the module-level ULP tolerance).
    pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(a.len(), m * k, "matmul_into lhs size mismatch");
        debug_assert_eq!(b.len(), k * n, "matmul_into rhs size mismatch");
        out.clear();
        out.resize(m * n, 0.0);
        let bp = b.as_ptr();
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            let op = o_row.as_mut_ptr();
            let mut j = 0;
            while j + 16 <= n {
                // SAFETY: NEON is baseline on aarch64; the 4×4-lane loads
                // and stores cover columns `j..j+16` with `j + 16 <= n`
                // guaranteed by the loop guard, inside `b`'s row `kk` and
                // `o_row`.
                unsafe {
                    let mut acc0 = vdupq_n_f32(0.0);
                    let mut acc1 = vdupq_n_f32(0.0);
                    let mut acc2 = vdupq_n_f32(0.0);
                    let mut acc3 = vdupq_n_f32(0.0);
                    for (kk, &c) in a_row.iter().enumerate() {
                        if c == 0.0 {
                            continue;
                        }
                        let bq = bp.add(kk * n + j);
                        let vc = vdupq_n_f32(c);
                        // vmulq + vaddq, not vfmaq: the scalar reference
                        // rounds the product before the add.
                        acc0 = vaddq_f32(acc0, vmulq_f32(vc, vld1q_f32(bq)));
                        acc1 = vaddq_f32(acc1, vmulq_f32(vc, vld1q_f32(bq.add(4))));
                        acc2 = vaddq_f32(acc2, vmulq_f32(vc, vld1q_f32(bq.add(8))));
                        acc3 = vaddq_f32(acc3, vmulq_f32(vc, vld1q_f32(bq.add(12))));
                    }
                    vst1q_f32(op.add(j), acc0);
                    vst1q_f32(op.add(j + 4), acc1);
                    vst1q_f32(op.add(j + 8), acc2);
                    vst1q_f32(op.add(j + 12), acc3);
                }
                j += 16;
            }
            while j + 4 <= n {
                // SAFETY: NEON is baseline on aarch64; one 4-lane load and
                // store at columns `j..j+4` with `j + 4 <= n` guaranteed
                // by the loop guard.
                unsafe {
                    let mut acc = vdupq_n_f32(0.0);
                    for (kk, &c) in a_row.iter().enumerate() {
                        if c == 0.0 {
                            continue;
                        }
                        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(c), vld1q_f32(bp.add(kk * n + j))));
                    }
                    vst1q_f32(op.add(j), acc);
                }
                j += 4;
            }
            if j < n {
                for (kk, &c) in a_row.iter().enumerate() {
                    if c == 0.0 {
                        continue;
                    }
                    let row = &b[kk * n + j..(kk + 1) * n];
                    for (o, &v) in o_row[j..].iter_mut().zip(row) {
                        *o += c * v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..len).map(f).collect()
    }

    /// Asserts the module-level equivalence contract against the scalar
    /// reference: bit-exact for non-SIMD backends, within `ULP_TOLERANCE`
    /// (or `ABS_TOLERANCE` near zero) per element for SIMD ones.
    #[track_caller]
    fn assert_within_contract(backend: KernelBackend, out: &[f32], reference: &[f32], what: &str) {
        assert_eq!(out.len(), reference.len(), "{} {what} length", backend.name());
        if !backend.is_simd() {
            assert_eq!(out, reference, "{} {what} must be bit-exact", backend.name());
            return;
        }
        for (i, (&got, &want)) in out.iter().zip(reference).enumerate() {
            let ulps = (got.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
            let close = got == want || (got - want).abs() <= ABS_TOLERANCE || ulps <= ULP_TOLERANCE;
            assert!(close, "{} {what} [{i}]: got {got}, want {want} ({ulps} ulps)", backend.name());
        }
    }

    /// Every supported backend must match the scalar reference within the
    /// documented tolerance on shapes covering all tile paths (odd rows,
    /// column tails, zero coefficients). The scalar backend itself is the
    /// reference; SIMD backends that re-associate with FMA get the ULP
    /// budget, NEON (same accumulation order) comes out bit-exact anyway.
    #[test]
    fn dispatch_matmul_matches_reference_within_tolerance() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (2, 4, 32), (3, 5, 37), (8, 144, 196), (5, 7, 70), (2, 9, 8)] {
            let mut a = seq(m * k, |v| (v as f32 * 0.37).sin());
            // Sprinkle exact zeros: the scalar reference skips them, SIMD
            // paths must still land within tolerance.
            for v in a.iter_mut().step_by(5) {
                *v = 0.0;
            }
            let b = seq(k * n, |v| (v as f32 * 0.11).cos());
            let mut reference = Vec::new();
            ops::matmul_into(&a, m, k, &b, n, &mut reference);
            for backend in KernelBackend::supported() {
                let mut out = vec![f32::NAN; 2];
                matmul_into_with(backend, &a, m, k, &b, n, &mut out);
                assert_within_contract(backend, &out, &reference, &format!("matmul {m}x{k}x{n}"));
            }
        }
    }

    /// The fused conv path (3×3/s1/p1 on AVX2) and the im2col fallback
    /// must both match the scalar conv within the matmul tolerance.
    #[test]
    fn dispatch_conv2d_matches_reference_within_tolerance() {
        let shapes = [
            // (c, m, h, w, kernel, stride, padding); first three take the
            // fused 3×3 path on AVX2 (w covers 16-tiles, 8-tails and
            // masked sub-8 tails), the last is the im2col fallback.
            (3usize, 8usize, 28usize, 28usize, 3usize, 1usize, 1usize),
            (8, 16, 14, 14, 3, 1, 1),
            (2, 5, 7, 19, 3, 1, 1),
            (4, 6, 12, 12, 3, 2, 1),
        ];
        for &(c, m, h, w, kernel, stride, padding) in &shapes {
            let spec = ConvSpec { in_channels: c, out_channels: m, kernel, stride, padding };
            let input = seq(c * h * w, |v| (v as f32 * 0.29).sin());
            let weight = seq(m * c * kernel * kernel, |v| (v as f32 * 0.17).cos() * 0.2);
            let bias = seq(m, |v| (v as f32 * 0.41).sin() * 0.1);
            let (oh, ow) = spec.out_size(h, w);
            let mut scratch = Vec::new();
            let mut reference = Vec::new();
            conv2d_into_with(KernelBackend::Scalar, &input, h, w, &spec, &weight, &bias, &mut scratch, &mut reference);
            // The scalar dispatch arm must agree bit-exactly with the
            // training-path conv (im2col + scalar matmul + bias).
            let mut cols = Vec::new();
            ops::im2col_into(&input, h, w, &spec, &mut cols);
            let mut train_ref = Vec::new();
            ops::matmul_into(&weight, m, c * kernel * kernel, &cols, oh * ow, &mut train_ref);
            for (ch, chunk) in train_ref.chunks_exact_mut(oh * ow).enumerate() {
                for v in chunk {
                    *v += bias[ch];
                }
            }
            assert_eq!(reference, train_ref, "scalar conv2d vs training path {c}ch {h}x{w}");
            for backend in KernelBackend::supported() {
                let mut out = vec![f32::NAN; 2];
                conv2d_into_with(backend, &input, h, w, &spec, &weight, &bias, &mut scratch, &mut out);
                assert_within_contract(backend, &out, &reference, &format!("conv2d {c}ch {h}x{w} k{kernel}s{stride}"));
            }
        }
    }

    /// Activations are element-wise: every backend must agree with the
    /// scalar loop by value on every length (vector body + scalar tail),
    /// including negative zeros and exact zeros.
    #[test]
    fn dispatch_activations_bit_identical_across_backends() {
        for len in [0usize, 1, 7, 8, 9, 40, 67] {
            let mut base = seq(len, |v| (v as f32 * 0.47).sin());
            if len > 3 {
                base[1] = 0.0;
                base[2] = -0.0;
                base[3] = -1.5;
            }
            let mut relu_ref = base.clone();
            relu_in_place_with(KernelBackend::Scalar, &mut relu_ref);
            let mut leaky_ref = base.clone();
            leaky_relu_in_place_with(KernelBackend::Scalar, &mut leaky_ref, 0.1);
            for backend in KernelBackend::supported() {
                let mut relu_out = base.clone();
                relu_in_place_with(backend, &mut relu_out);
                assert_eq!(relu_out, relu_ref, "{} relu len {len}", backend.name());
                let mut leaky_out = base.clone();
                leaky_relu_in_place_with(backend, &mut leaky_out, 0.1);
                assert_eq!(leaky_out, leaky_ref, "{} leaky_relu len {len}", backend.name());
            }
        }
    }

    #[test]
    fn dispatch_matvec_bit_identical_across_backends() {
        for &(m, k) in &[(1usize, 3usize), (8, 16), (17, 144), (3, 1)] {
            let a = seq(m * k, |v| (v as f32 * 0.23).sin());
            let x = seq(k, |v| (v as f32 * 0.71).cos());
            let mut reference = Vec::new();
            ops::matvec_into(&a, m, k, &x, &mut reference);
            for backend in KernelBackend::supported() {
                let mut out = vec![f32::NAN; 1];
                matvec_into_with(backend, &a, m, k, &x, &mut out);
                assert_eq!(out, reference, "{} matvec {}x{}", backend.name(), m, k);
            }
        }
    }

    #[test]
    fn dispatch_maxpool_bit_identical_across_backends() {
        // Includes -0.0 / +0.0 ties, which `max_ps` would get wrong; the
        // compare+blend implementation must keep the first of equal values.
        for &(c, h, w) in &[(1usize, 2usize, 2usize), (3, 4, 20), (2, 8, 8), (16, 28, 28)] {
            let mut input = seq(c * h * w, |v| (v as f32 * 0.53).sin());
            for v in input.iter_mut().step_by(7) {
                *v = -0.0;
            }
            for v in input.iter_mut().step_by(11) {
                *v = 0.0;
            }
            let mut reference = Vec::new();
            ops::maxpool2d_into(&input, c, h, w, 2, &mut reference);
            for backend in KernelBackend::supported() {
                let mut out = vec![f32::NAN; 1];
                maxpool2d_into_with(backend, &input, c, h, w, 2, &mut out);
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{} maxpool {}x{}x{}",
                    backend.name(),
                    c,
                    h,
                    w
                );
            }
        }
    }

    #[test]
    fn dispatch_gap_bit_identical_across_backends() {
        for &(c, h, w) in &[(1usize, 1usize, 1usize), (8, 14, 14), (17, 7, 7), (16, 3, 5)] {
            let input = seq(c * h * w, |v| (v as f32 * 0.31).sin());
            let mut reference = Vec::new();
            ops::global_avg_pool_into(&input, c, h, w, &mut reference);
            for backend in KernelBackend::supported() {
                let mut out = vec![f32::NAN; 1];
                global_avg_pool_into_with(backend, &input, c, h, w, &mut out);
                assert_eq!(out, reference, "{} gap {}x{}x{}", backend.name(), c, h, w);
            }
        }
    }

    #[test]
    fn active_backend_is_supported_and_named() {
        let active = KernelBackend::active();
        assert!(active.is_supported());
        assert!(["scalar", "avx2", "avx512", "neon"].contains(&active.name()));
        // The supported list always starts with the scalar reference.
        assert_eq!(KernelBackend::supported()[0], KernelBackend::Scalar);
        assert!(KernelBackend::Scalar.is_supported());
        assert!(!KernelBackend::Scalar.is_simd());
    }

    #[test]
    fn detect_matches_arch_capabilities() {
        let detected = KernelBackend::detect();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
            if std::arch::is_x86_feature_detected!("avx512f") {
                assert_eq!(detected, KernelBackend::Avx512);
            } else {
                assert_eq!(detected, KernelBackend::Avx2);
            }
        }
        #[cfg(target_arch = "aarch64")]
        assert_eq!(detected, KernelBackend::Neon);
        assert!(detected.is_supported());
    }
}
