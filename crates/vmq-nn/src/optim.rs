//! Optimisers: SGD with momentum and weight decay, and Adam.
//!
//! The paper trains IC filters with Adam (lr 1e-4, exponential decay 5e-4) and
//! OD filters with SGD (momentum 0.9, weight decay 5e-4); both are provided.

use crate::net::Param;
use crate::tensor::Tensor;

/// A gradient-descent optimiser over a set of parameters.
///
/// Optimisers are stateless with respect to *which* parameters they update:
/// internal state (momentum buffers, Adam moments) is keyed by position in the
/// parameter list, so the same list must be passed on every step — which is
/// what [`crate::net::Sequential::parameters`] guarantees.
pub trait Optimizer {
    /// Applies one update step using the gradients accumulated in `params`.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and L2 weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum and weight decay (the configuration of Sec. IV for
    /// OD filters: momentum 0.9, weight decay 5e-4).
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.shape().to_vec())).collect();
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            let vd = v.data_mut();
            let gd = p.grad.data();
            let pd = p.value.data_mut();
            for i in 0..pd.len() {
                let g = gd[i] + self.weight_decay * pd[i];
                vd[i] = self.momentum * vd[i] + g;
                pd[i] -= self.lr * vd[i];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimiser (Kingma & Ba) with bias-corrected moment estimates.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999) and no weight decay.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Adam with L2 weight decay, matching the paper's IC training setup.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam { weight_decay, ..Adam::new(lr) }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.shape().to_vec())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.shape().to_vec())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            let md = m.data_mut();
            let vd = v.data_mut();
            let gd = p.grad.data();
            let pd = p.value.data_mut();
            for i in 0..pd.len() {
                let g = gd[i] + self.weight_decay * pd[i];
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * g;
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * g * g;
                let m_hat = md[i] / bc1;
                let v_hat = vd[i] / bc2;
                pd[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Exponential learning-rate decay schedule `lr_t = lr_0 * (1 - decay)^epoch`.
#[derive(Debug, Clone, Copy)]
pub struct ExpDecay {
    base_lr: f32,
    decay: f32,
}

impl ExpDecay {
    /// Creates a schedule with the given base learning rate and decay factor.
    pub fn new(base_lr: f32, decay: f32) -> Self {
        ExpDecay { base_lr, decay }
    }

    /// Learning rate at a given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * (1.0 - self.decay).powi(epoch as i32)
    }

    /// Applies the schedule to an optimiser.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: usize) {
        opt.set_learning_rate(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_param(x: f32) -> Param {
        Param::new(Tensor::from_vec(vec![x], vec![1]))
    }

    /// Minimise f(x) = (x - 3)^2 with each optimiser.
    fn run_opt(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = quad_param(0.0);
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad = Tensor::from_vec(vec![2.0 * (x - 3.0)], vec![1]);
            let mut params = [&mut p];
            opt.step(&mut params);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_opt(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
        let x = run_opt(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let x = run_opt(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With zero gradient, weight decay alone should shrink the parameter.
        let mut p = quad_param(1.0);
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        for _ in 0..10 {
            p.grad = Tensor::zeros(vec![1]);
            let mut params = [&mut p];
            opt.step(&mut params);
        }
        assert!(p.value.data()[0] < 1.0);
        assert!(p.value.data()[0] > 0.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn exp_decay_schedule() {
        let sched = ExpDecay::new(1e-4, 5e-4);
        assert_eq!(sched.lr_at(0), 1e-4);
        assert!(sched.lr_at(10) < 1e-4);
        let mut opt = Sgd::new(1.0);
        sched.apply(&mut opt, 5);
        assert!(opt.learning_rate() < 1e-4 * 1.0001 && opt.learning_rate() > 0.0);
    }
}
