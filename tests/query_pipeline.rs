//! Integration tests of the query pipeline across crates: cascade safety,
//! streaming/batch equivalence and per-query behaviour of the paper's q1–q7.

use vmq::detect::OracleDetector;
use vmq::filters::{CalibratedFilter, CalibrationProfile};
use vmq::query::exec::run_streaming;
use vmq::query::{CascadeConfig, Query, QueryExecutor};
use vmq::video::{Dataset, DatasetKind, DatasetProfile};

fn dataset_for(query_name: &str) -> Dataset {
    let kind = match query_name {
        "q1" | "q2" | "a5" => DatasetKind::Coral,
        "q6" | "q7" | "a3" | "a4" => DatasetKind::Detrac,
        _ => DatasetKind::Jackson,
    };
    Dataset::generate(&DatasetProfile::for_kind(kind), 30, 150, 77)
}

/// Every paper query, evaluated with a perfect filter and a tolerant cascade,
/// loses no true frames (100 % recall), mirroring Table III's accuracy column.
#[test]
fn all_paper_queries_keep_full_recall_with_perfect_filter() {
    let queries = [
        Query::paper_q1(),
        Query::paper_q2(),
        Query::paper_q3(),
        Query::paper_q4(),
        Query::paper_q5(),
        Query::paper_q6(),
        Query::paper_q7(),
    ];
    let oracle = OracleDetector::perfect();
    for query in queries {
        let ds = dataset_for(&query.name);
        let filter = CalibratedFilter::new(ds.profile().class_list(), 16, CalibrationProfile::perfect(), 3);
        let exec = QueryExecutor::new(query.clone());
        let run = exec.run_filtered(ds.test(), &filter, &oracle, CascadeConfig::tolerant());
        let accuracy = exec.accuracy(&run, ds.test());
        assert_eq!(accuracy.recall, 1.0, "query {} lost true frames: {accuracy:?}", query.name);
        assert_eq!(accuracy.precision, 1.0, "query {} reported false frames: {accuracy:?}", query.name);
    }
}

/// A noisier (realistic) filter still keeps high recall with the loose
/// cascade while filtering out a meaningful share of frames for selective
/// queries.
#[test]
fn noisy_filter_trades_little_recall_for_selectivity() {
    // q6 on the dense Detrac stream: "exactly one car and exactly one bus"
    // is highly selective (most frames carry many cars), so even a ±1 count
    // tolerance prunes aggressively while a realistic count error of ±0.45
    // keeps nearly every true frame.
    let ds = Dataset::generate(&DatasetProfile::detrac(), 30, 400, 13);
    let filter = CalibratedFilter::new(ds.profile().class_list(), 16, CalibrationProfile::od_like(), 5);
    let oracle = OracleDetector::perfect();
    let exec = QueryExecutor::new(Query::paper_q6());
    let run = exec.run_filtered(ds.test(), &filter, &oracle, CascadeConfig::tolerant());
    let accuracy = exec.accuracy(&run, ds.test());
    assert!(accuracy.recall >= 0.8, "recall {accuracy:?}");
    assert!(
        run.frames_passed_filter < run.frames_total,
        "the cascade should drop at least some frames for a selective query"
    );
}

/// The streaming executor and the batch executor agree frame-for-frame.
///
/// The calibrated filter is stochastic with a sequential RNG, so each run
/// gets its own identically seeded filter instance — otherwise the second
/// run would continue the first run's noise stream and the comparison would
/// be meaningless.
#[test]
fn streaming_and_batch_agree() {
    let ds = Dataset::generate(&DatasetProfile::detrac(), 30, 120, 19);
    let fresh_filter = || CalibratedFilter::new(ds.profile().class_list(), 16, CalibrationProfile::od_like(), 7);
    let oracle = OracleDetector::perfect();
    for query in [Query::paper_q6(), Query::paper_q7()] {
        let exec = QueryExecutor::new(query.clone());
        let batch = exec.run_filtered(ds.test(), &fresh_filter(), &oracle, CascadeConfig::loose());
        let stream = run_streaming(&query, ds.test().to_vec(), &fresh_filter(), &oracle, CascadeConfig::loose(), 16);
        assert_eq!(batch.matched_frames, stream.matched_frames, "query {}", query.name);
        assert_eq!(batch.frames_passed_filter, stream.frames_passed_filter);
    }
}

/// Tighter cascades are never less selective than looser ones, and brute
/// force is an upper bound on detector work.
#[test]
fn selectivity_is_monotone_in_tolerance() {
    let ds = Dataset::generate(&DatasetProfile::jackson(), 30, 250, 29);
    let filter = CalibratedFilter::new(ds.profile().class_list(), 16, CalibrationProfile::od_like(), 11);
    let oracle = OracleDetector::perfect();
    let query = Query::paper_q3();

    let strict = QueryExecutor::new(query.clone()).run_filtered(ds.test(), &filter, &oracle, CascadeConfig::strict());
    let tolerant =
        QueryExecutor::new(query.clone()).run_filtered(ds.test(), &filter, &oracle, CascadeConfig::tolerant());
    let loose = QueryExecutor::new(query.clone()).run_filtered(ds.test(), &filter, &oracle, CascadeConfig::loose());
    let brute = QueryExecutor::new(query).run_brute_force(ds.test(), &oracle);

    assert!(strict.frames_passed_filter <= tolerant.frames_passed_filter);
    assert!(tolerant.frames_passed_filter <= loose.frames_passed_filter);
    assert!(loose.frames_detected <= brute.frames_detected);
    assert!(strict.virtual_ms <= tolerant.virtual_ms + 1e-9);
}
