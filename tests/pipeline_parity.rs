//! Parity tests of the batched operator pipeline against the eager,
//! frame-at-a-time execution semantics the original executor implemented
//! (one decode + filter charge per frame, detector charge per surviving
//! frame, answers in stream order), plus a property test that recall is
//! monotone in the cascade tolerances.

use proptest::prelude::*;
use vmq::aggregate::{AggregateEstimator, WindowedAggregator};
use vmq::detect::{CostLedger, Detector, Stage};
use vmq::filters::{CalibratedFilter, CalibrationProfile, FilterKind, FrameFilter};
use vmq::query::plan::FilterCascade;
use vmq::query::planner::PlanChoice;
use vmq::query::{AggregateSpec, CascadeConfig, Query, QueryAccuracy, QueryExecutor};
use vmq::video::{Dataset, DatasetKind, DatasetProfile, Frame};

/// The eager reference semantics: the per-frame loop the seed's
/// `run_filtered` / `run_brute_force` implemented, charging every stage one
/// frame at a time. Returns `(matched_frames, frames_detected, virtual_ms)`.
fn eager_reference(
    query: &Query,
    frames: &[Frame],
    filter: Option<&dyn FrameFilter>,
    detector: &dyn Detector,
    cascade: Option<CascadeConfig>,
) -> (Vec<u64>, usize, f64) {
    let ledger = CostLedger::paper();
    let cascade = cascade.map(|config| FilterCascade::new(query.clone(), config));
    let mut matched = Vec::new();
    let mut detected = 0usize;
    for frame in frames {
        ledger.charge(Stage::Decode, 1);
        if let (Some(filter), Some(cascade)) = (filter, cascade.as_ref()) {
            ledger.charge(filter.kind().stage(), 1);
            let estimate = filter.estimate(frame);
            if !cascade.passes(&estimate, filter.threshold()) {
                continue;
            }
        }
        ledger.charge(detector.stage(), 1);
        detected += 1;
        if query.matches_detections(&detector.detect(frame)) {
            matched.push(frame.frame_id);
        }
    }
    (matched, detected, ledger.total_ms())
}

fn scenario(kind: DatasetKind) -> (Dataset, Query) {
    // The same dataset-to-query pairing end_to_end.rs exercises.
    let query = match kind {
        DatasetKind::Coral => Query::paper_q1(),
        DatasetKind::Jackson => Query::paper_q3(),
        DatasetKind::Detrac => Query::paper_q6(),
    };
    (Dataset::generate(&DatasetProfile::for_kind(kind), 40, 120, 17), query)
}

/// Filtered execution through the operator pipeline is byte-identical to the
/// eager per-frame semantics — matched frame ids, detector invocations and
/// the virtual-time total — on the end-to-end scenarios, for every batch
/// size, with both a perfect and a noisy (stochastic) filter.
#[test]
fn filtered_pipeline_matches_eager_semantics_exactly() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let classes = ds.profile().class_list();
        for profile in [CalibrationProfile::perfect(), CalibrationProfile::od_like()] {
            // The calibrated filter draws from a sequential RNG, so reference
            // and pipeline runs each get their own identically seeded copy.
            let fresh = || CalibratedFilter::new(classes.clone(), 16, profile, 99);
            let reference_filter = fresh();
            let (matched, detected, virtual_ms) =
                eager_reference(&query, ds.test(), Some(&reference_filter), &oracle, Some(CascadeConfig::strict()));
            for batch_size in [1usize, 7, 32, 1024] {
                let filter = fresh();
                let exec = QueryExecutor::new(query.clone()).with_batch_size(batch_size);
                let run = exec.run_filtered(ds.test(), &filter, &oracle, CascadeConfig::strict());
                assert_eq!(run.matched_frames, matched, "{kind:?} batch {batch_size}");
                assert_eq!(run.frames_detected, detected, "{kind:?} batch {batch_size}");
                assert_eq!(
                    run.virtual_ms.to_bits(),
                    virtual_ms.to_bits(),
                    "{kind:?} batch {batch_size}: {} vs {}",
                    run.virtual_ms,
                    virtual_ms
                );
            }
        }
    }
}

/// Brute-force execution through the pipeline matches the eager per-frame
/// semantics exactly as well.
#[test]
fn brute_force_pipeline_matches_eager_semantics_exactly() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let (matched, detected, virtual_ms) = eager_reference(&query, ds.test(), None, &oracle, None);
        for batch_size in [1usize, 13, 64] {
            let exec = QueryExecutor::new(query.clone()).with_batch_size(batch_size);
            let run = exec.run_brute_force(ds.test(), &oracle);
            assert_eq!(run.matched_frames, matched);
            assert_eq!(run.frames_detected, detected);
            assert_eq!(run.virtual_ms.to_bits(), virtual_ms.to_bits());
        }
    }
}

/// Same seed ⇒ identical `PlanChoice`, whatever the pipeline batch size.
/// The planner profiles candidates through `estimate_batch` in
/// pipeline-sized chunks, and chunking is covered by the batch parity
/// guarantee, so the plan must not depend on the batch size — even for the
/// stochastic calibrated filter (identically seeded copies per run).
#[test]
fn plan_choice_is_identical_across_batch_sizes() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let classes = ds.profile().class_list();
        let choices: Vec<PlanChoice> = [1usize, 7, 64]
            .iter()
            .map(|&batch_size| {
                let od = CalibratedFilter::new(classes.clone(), 16, CalibrationProfile::od_like(), 31);
                let ic = CalibratedFilter::new(classes.clone(), 16, CalibrationProfile::ic_like(), 32);
                let backends: Vec<&dyn FrameFilter> = vec![&od, &ic];
                let exec = QueryExecutor::new(query.clone()).with_batch_size(batch_size);
                let (_run, report) = exec.run_adaptive(ds.test(), 40, &backends, &CascadeConfig::lattice(), &oracle);
                report.choice
            })
            .collect();
        for choice in &choices[1..] {
            assert_eq!(choice.label, choices[0].label, "{kind:?}");
            assert_eq!(choice.cascade, choices[0].cascade, "{kind:?}");
            assert_eq!(choice.backend_index, choices[0].backend_index, "{kind:?}");
            assert_eq!(choice.expected_cost.to_bits(), choices[0].expected_cost.to_bits(), "{kind:?}");
            assert_eq!(choice.expected_selectivity.to_bits(), choices[0].expected_selectivity.to_bits(), "{kind:?}");
        }
    }
}

/// Adaptive execution is the chosen fixed pipeline plus a calibration bill:
/// its matched frame ids are byte-identical to running the chosen
/// `(backend, cascade)` through the fixed pipeline, and its virtual time is
/// exactly the fixed run's plus the reported calibration cost.
/// (Deterministic filters — the perfect calibrated backend — make the
/// comparison exact regardless of the extra calibration-time RNG draws.)
#[test]
fn adaptive_execution_matches_fixed_pipeline_with_chosen_config() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let classes = ds.profile().class_list();
        let fresh = |fk: FilterKind| {
            CalibratedFilter::new(classes.clone(), 16, CalibrationProfile::perfect().emulating(fk), 77)
        };

        let od = fresh(FilterKind::Od);
        let ic = fresh(FilterKind::Ic);
        let backends: Vec<&dyn FrameFilter> = vec![&od, &ic];
        let exec = QueryExecutor::new(query.clone());
        let (adaptive, report) = exec.run_adaptive(ds.test(), 32, &backends, &CascadeConfig::lattice(), &oracle);

        // The planner may pick the brute-force floor; the adaptive execution
        // must then match a plain brute-force run plus the calibration bill.
        let fixed_exec = QueryExecutor::new(query.clone());
        let fixed = if report.choice.brute_force {
            fixed_exec.run_brute_force(ds.test(), &oracle)
        } else {
            let chosen_filter = fresh(if report.choice.backend == "IC" { FilterKind::Ic } else { FilterKind::Od });
            fixed_exec.run_filtered(ds.test(), &chosen_filter, &oracle, report.choice.cascade)
        };

        assert_eq!(adaptive.matched_frames, fixed.matched_frames, "{kind:?}");
        assert_eq!(adaptive.frames_detected, fixed.frames_detected, "{kind:?}");
        assert_eq!(adaptive.frames_passed_filter, fixed.frames_passed_filter, "{kind:?}");
        assert!(
            (fixed.virtual_ms + report.calibration_ms - adaptive.virtual_ms).abs() < 1e-6,
            "{kind:?}: adaptive must cost exactly fixed + calibration: {} + {} vs {}",
            fixed.virtual_ms,
            report.calibration_ms,
            adaptive.virtual_ms
        );
        assert!(adaptive.mode.starts_with("adaptive "), "{}", adaptive.mode);
        assert_eq!(adaptive.stage_metrics[0].operator, "calibrate");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recall is monotone in the cascade tolerances: loosening the count or
    /// location tolerance never loses a frame the tighter cascade kept, so
    /// recall (and the pass count) can only grow. Identically seeded filter
    /// copies guarantee both runs see the same stochastic estimates.
    #[test]
    fn recall_is_monotone_in_cascade_tolerances(
        seed in 0u64..300,
        query_idx in 0usize..3,
        count_tol in 0u32..3,
        location_tol in 0usize..3,
        count_bump in 0u32..3,
        location_bump in 0usize..3,
    ) {
        let profile = DatasetProfile::jackson();
        let ds = Dataset::generate(&profile, 10, 80, seed);
        let query = [Query::paper_q3(), Query::paper_q4(), Query::paper_q5()][query_idx].clone();
        let oracle = vmq::detect::OracleDetector::perfect();
        let fresh = || CalibratedFilter::new(profile.class_list(), 16, CalibrationProfile::od_like(), seed ^ 0xF1);

        let tight = CascadeConfig { count_tolerance: count_tol, location_tolerance: location_tol };
        let loose = CascadeConfig {
            count_tolerance: count_tol + count_bump,
            location_tolerance: location_tol + location_bump,
        };

        let exec = QueryExecutor::new(query.clone());
        let tight_run = exec.run_filtered(ds.test(), &fresh(), &oracle, tight);
        let loose_run = exec.run_filtered(ds.test(), &fresh(), &oracle, loose);

        let truth = exec.ground_truth(ds.test());
        let tight_recall = QueryAccuracy::compare(&tight_run.matched_frames, &truth).recall;
        let loose_recall = QueryAccuracy::compare(&loose_run.matched_frames, &truth).recall;

        prop_assert!(tight_run.frames_passed_filter <= loose_run.frames_passed_filter,
            "pass count must be monotone: {} > {}", tight_run.frames_passed_filter, loose_run.frames_passed_filter);
        prop_assert!(tight_recall <= loose_recall + 1e-6,
            "recall must be monotone: tight {tight_recall} vs loose {loose_recall}");
        // The looser run's answer set contains the tighter run's.
        for id in &tight_run.matched_frames {
            prop_assert!(loose_run.matched_frames.contains(id), "frame {id} lost when loosening tolerances");
        }
    }
}

/// The single-window pipeline aggregate path is **bit-identical** to the
/// legacy `AggregateEstimator::run` at equal seed: same sampler keys, same
/// indicator columns (batched filter inference is order-preserving), same
/// trial math — so every statistical field of the report matches bit for
/// bit. (Wall-clock fields are excluded by nature; the windowed report
/// carries its filter wall time in the run's stage metrics instead.)
#[test]
fn single_window_aggregate_matches_legacy_estimator_bit_for_bit() {
    let oracle = vmq::detect::OracleDetector::perfect();
    let profile = DatasetProfile::jackson();
    let ds = Dataset::generate(&profile, 30, 250, 21);
    let (sample_size, trials, seed) = (30usize, 40usize, 0xA66u64);
    for query in [Query::paper_a1(), Query::paper_a2()] {
        // Legacy one-shot estimator (its own fresh stochastic filter).
        let legacy_filter = CalibratedFilter::new(profile.class_list(), 14, CalibrationProfile::od_like(), 5);
        let legacy_est = AggregateEstimator::new(query.clone(), sample_size, seed);
        let legacy = legacy_est.run(ds.test(), &legacy_filter, &oracle, trials);

        // Pipeline path: one tumbling window spanning the whole split, with
        // an identically-seeded filter.
        let pipeline_filter = CalibratedFilter::new(profile.class_list(), 14, CalibrationProfile::od_like(), 5);
        let backends: Vec<&dyn FrameFilter> = vec![&pipeline_filter];
        let mut agg = WindowedAggregator::new(query.clone(), sample_size, trials, seed);
        let exec = QueryExecutor::new(query.clone());
        let run = exec.run_aggregate(
            ds.test(),
            AggregateSpec::new(ds.test().len(), ds.test().len()),
            &backends,
            &oracle,
            &mut agg,
        );
        assert_eq!(agg.reports().len(), 1);
        let windowed = &agg.reports()[0];

        assert_eq!(windowed.plain_mean.to_bits(), legacy.plain_mean.to_bits(), "{}: plain mean", query.name);
        assert_eq!(windowed.cv_mean.to_bits(), legacy.cv_mean.to_bits(), "{}: cv mean", query.name);
        assert_eq!(windowed.mcv_mean.to_bits(), legacy.mcv_mean.to_bits(), "{}: mcv mean", query.name);
        assert_eq!(
            windowed.plain_variance.to_bits(),
            legacy.plain_variance.to_bits(),
            "{}: plain variance",
            query.name
        );
        assert_eq!(windowed.cv_variance.to_bits(), legacy.cv_variance.to_bits(), "{}: cv variance", query.name);
        assert_eq!(windowed.mcv_variance.to_bits(), legacy.mcv_variance.to_bits(), "{}: mcv variance", query.name);
        assert_eq!(
            windowed.mean_correlation.to_bits(),
            legacy.mean_correlation.to_bits(),
            "{}: correlation",
            query.name
        );
        assert_eq!(windowed.true_fraction.to_bits(), legacy.true_fraction.to_bits(), "{}: true fraction", query.name);
        assert_eq!(windowed.time_per_sample_ms.to_bits(), legacy.time_per_sample_ms.to_bits());
        assert_eq!(windowed.sample_size, legacy.sample_size);
        assert_eq!(windowed.window_frames, legacy.window_frames);
        assert_eq!(windowed.trials, legacy.trials);
        assert_eq!(windowed.backend, legacy.backend);

        // Ledger parity: both paths charged the filter window-wide and the
        // detector once per sampled frame.
        assert_eq!(
            exec.ledger().invocations(Stage::MaskRcnn),
            legacy_est.ledger().invocations(Stage::MaskRcnn),
            "{}: detector invocations",
            query.name
        );
        assert_eq!(
            exec.ledger().invocations(legacy_filter.kind().stage()),
            legacy_est.ledger().invocations(legacy_filter.kind().stage()),
            "{}: filter invocations",
            query.name
        );
        assert_eq!(run.frames_detected as u64, exec.ledger().invocations(Stage::MaskRcnn));
    }
}

// ---------------------------------------------------------------------------
// Shared multi-query runtime parity
// ---------------------------------------------------------------------------

use vmq::engine::{EngineConfig, FilterChoice, RuntimeQuery, VmqEngine};
use vmq::query::plan::CascadeConfig as SharedCascade;

/// Filter-stage sharding through the single-query pipeline is a pure
/// wall-clock knob: for every worker count the cascade keeps the same
/// survivors, the detector sees the same frames and the virtual bill is
/// bit-identical (the calibrated backend's sequential RNG stream included).
#[test]
fn filter_stage_workers_are_a_pure_wall_clock_knob() {
    let (ds, query) = scenario(DatasetKind::Jackson);
    let oracle = vmq::detect::OracleDetector::perfect();
    let classes = ds.profile().class_list();
    let mut baseline: Option<vmq::query::QueryRun> = None;
    for workers in [1usize, 2, 4] {
        let filter = CalibratedFilter::new(classes.clone(), 16, CalibrationProfile::od_like(), 99);
        let exec = QueryExecutor::new(query.clone()).with_batch_size(13).with_filter_workers(workers);
        let run = exec.run_filtered(ds.test(), &filter, &oracle, CascadeConfig::tolerant());
        let cascade_row = run.stage_metrics.iter().find(|m| m.operator == "cascade-filter").expect("cascade row");
        assert_eq!(cascade_row.workers, workers, "stage metrics must report the shard width");
        match &baseline {
            None => baseline = Some(run),
            Some(reference) => {
                assert_eq!(run.matched_frames, reference.matched_frames, "workers {workers}");
                assert_eq!(run.frames_passed_filter, reference.frames_passed_filter, "workers {workers}");
                assert_eq!(run.frames_detected, reference.frames_detected, "workers {workers}");
                assert_eq!(run.virtual_ms.to_bits(), reference.virtual_ms.to_bits(), "workers {workers}");
            }
        }
    }
}

fn paper_selects() -> Vec<Query> {
    vec![
        Query::paper_q1(),
        Query::paper_q2(),
        Query::paper_q3(),
        Query::paper_q4(),
        Query::paper_q5(),
        Query::paper_q6(),
        Query::paper_q7(),
    ]
}

fn paper_aggregates() -> Vec<Query> {
    vec![Query::paper_a1(), Query::paper_a2(), Query::paper_a3(), Query::paper_a4(), Query::paper_a5()]
}

/// The acceptance criterion of the shared runtime: `run_many` over q1–q7
/// invokes the expensive detector exactly `|union of frames any query
/// escalates|` times. The union is recomputed independently from an
/// identically-seeded replica of the shared filter pass, and each per-query
/// run still pays (and reports) its own full escalation count.
#[test]
fn run_many_invokes_detector_once_per_escalation_union() {
    let engine = VmqEngine::new(EngineConfig::small(DatasetProfile::jackson()).with_sizes(30, 200));
    let profile = CalibrationProfile::od_like();
    let choice = FilterChoice::Calibrated(profile);
    let queries = paper_selects();
    let statements: Vec<RuntimeQuery> = queries
        .iter()
        .map(|query| RuntimeQuery::Select { query: query.clone(), choice, cascade: SharedCascade::tolerant() })
        .collect();
    let outcome = engine.run_many(&statements);

    // Replicate the one shared filter pass: same classes/grid/seed as the
    // engine resolves, estimates over the full stream (batch invariant).
    let config = engine.config();
    let filter = CalibratedFilter::new(config.filter.classes.clone(), config.filter.grid, profile, config.seed);
    let frames = engine.dataset().test();
    let estimates = filter.estimate_batch(frames);
    let mut union = std::collections::BTreeSet::new();
    let mut per_query = vec![0usize; queries.len()];
    for (i, query) in queries.iter().enumerate() {
        let cascade = FilterCascade::new(query.clone(), SharedCascade::tolerant());
        for (frame, estimate) in frames.iter().zip(&estimates) {
            if cascade.passes(estimate, filter.threshold()) {
                union.insert(frame.frame_id);
                per_query[i] += 1;
            }
        }
    }

    assert_eq!(outcome.detector_invocations, union.len() as u64, "detector must run once per unioned frame");
    let per_query_sum: usize = per_query.iter().sum();
    assert!(union.len() < per_query_sum, "q1–q7 overlap: dedup must actually collapse work");
    for (i, out) in outcome.outcomes.iter().enumerate() {
        assert_eq!(out.run().frames_detected, per_query[i], "{} pays its own escalations", queries[i].name);
    }
    assert!(outcome.shared.speedup() > 1.0, "sharing must beat isolated: {:?}", outcome.shared.speedup());
    let attributed: f64 = outcome.shared.queries.iter().map(|s| s.attributed_ms).sum();
    assert!((attributed - outcome.shared.shared_total_ms).abs() < 1e-6, "the split covers the whole bill");
}

/// Regression pin for the parallel filter stage: `run_many_sharded`'s
/// worker knob now shards backend inference (not just detection), and the
/// outcomes — selects with a cascade in front, an adaptively planned select
/// and a windowed aggregate — must stay bit-identical to the single-worker
/// pass for every worker count.
#[test]
fn run_many_sharded_outcomes_are_unchanged_by_filter_stage_workers() {
    use vmq::engine::CalibrationConfig;
    let engine = VmqEngine::new(EngineConfig::small(DatasetProfile::jackson()).with_sizes(30, 180));
    let choice = FilterChoice::Calibrated(CalibrationProfile::od_like());
    let statements = vec![
        RuntimeQuery::Select { query: Query::paper_q3(), choice, cascade: SharedCascade::tolerant() },
        RuntimeQuery::Select { query: Query::paper_q4(), choice, cascade: SharedCascade::strict() },
        RuntimeQuery::SelectAdaptive {
            query: Query::paper_q5(),
            calibration: CalibrationConfig {
                prefix_frames: 32,
                candidate_backends: vec![choice],
                candidate_tolerances: SharedCascade::lattice(),
            },
            drift: None,
        },
        RuntimeQuery::Aggregate {
            query: Query::paper_a1(),
            choice,
            window: vmq::aggregate::HoppingWindow::new(60, 30),
            sample_size: 10,
            trials: 5,
        },
    ];
    let baseline = engine.run_many_sharded(&statements, 1);
    for workers in [2usize, 4] {
        let outcome = engine.run_many_sharded(&statements, workers);
        assert_eq!(outcome.detector_invocations, baseline.detector_invocations, "workers {workers}");
        assert_eq!(outcome.cache_hits, baseline.cache_hits, "workers {workers}");
        for (a, b) in outcome.outcomes.iter().zip(&baseline.outcomes) {
            assert_eq!(a.run().mode, b.run().mode, "workers {workers}");
            assert_eq!(a.run().matched_frames, b.run().matched_frames, "workers {workers}");
            assert_eq!(a.run().frames_detected, b.run().frames_detected, "workers {workers}");
            assert_eq!(a.run().virtual_ms.to_bits(), b.run().virtual_ms.to_bits(), "workers {workers}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `run_many` over a random subset of q1–q7 selects and a1–a5 windowed
    /// aggregates yields per-query matches / estimates / virtual totals
    /// bit-identical to isolated runs, for every worker count in {1, 2, 4}.
    #[test]
    fn run_many_is_bit_identical_to_isolated_runs(
        seed in 0u64..40,
        subset in 1u32..4096,
        workers_idx in 0usize..3,
    ) {
        let engine = VmqEngine::new(
            EngineConfig::small(DatasetProfile::jackson()).with_sizes(20, 120).with_seed(seed),
        );
        let choice = FilterChoice::Calibrated(CalibrationProfile::od_like());
        let mut statements = Vec::new();
        for (i, query) in paper_selects().into_iter().enumerate() {
            if subset & (1 << i) != 0 {
                statements.push(RuntimeQuery::Select { query, choice, cascade: SharedCascade::tolerant() });
            }
        }
        for (i, query) in paper_aggregates().into_iter().enumerate() {
            if subset & (1 << (7 + i)) != 0 {
                statements.push(RuntimeQuery::Aggregate {
                    query,
                    choice,
                    window: vmq::aggregate::HoppingWindow::new(60, 30),
                    sample_size: 10,
                    trials: 5,
                });
            }
        }
        // `subset ∈ 1..4096` always sets at least one of the 12 bits, so
        // there is always at least one statement.
        prop_assert!(!statements.is_empty());
        let workers = [1usize, 2, 4][workers_idx];
        let outcome = engine.run_many_sharded(&statements, workers);

        for (statement, out) in statements.iter().zip(&outcome.outcomes) {
            match statement {
                RuntimeQuery::Select { query, choice, cascade } => {
                    let isolated = engine.run_query(query, *choice, *cascade);
                    let shared = out.as_select().expect("select outcome");
                    prop_assert_eq!(&shared.run.matched_frames, &isolated.run.matched_frames, "{}", query.name);
                    prop_assert_eq!(shared.run.frames_detected, isolated.run.frames_detected);
                    prop_assert_eq!(shared.run.virtual_ms.to_bits(), isolated.run.virtual_ms.to_bits());
                    prop_assert_eq!(shared.speedup.speedup.to_bits(), isolated.speedup.speedup.to_bits());
                }
                RuntimeQuery::Aggregate { query, choice, window, sample_size, trials } => {
                    let isolated = engine.run_aggregate_windows(query, *choice, *window, *sample_size, *trials);
                    let shared = out.as_aggregate().expect("aggregate outcome");
                    prop_assert_eq!(shared.reports.len(), isolated.reports.len(), "{}", query.name);
                    for (s, i) in shared.reports.iter().zip(&isolated.reports) {
                        prop_assert_eq!(s.plain_mean.to_bits(), i.plain_mean.to_bits(), "{}", query.name);
                        prop_assert_eq!(s.cv_mean.to_bits(), i.cv_mean.to_bits());
                        prop_assert_eq!(s.mcv_mean.to_bits(), i.mcv_mean.to_bits());
                        prop_assert_eq!(s.plain_variance.to_bits(), i.plain_variance.to_bits());
                        prop_assert_eq!(s.cv_variance.to_bits(), i.cv_variance.to_bits());
                        prop_assert_eq!(s.mcv_variance.to_bits(), i.mcv_variance.to_bits());
                        prop_assert_eq!(s.true_fraction.to_bits(), i.true_fraction.to_bits());
                        prop_assert_eq!(s.window_start, i.window_start);
                    }
                    prop_assert_eq!(shared.run.frames_detected, isolated.run.frames_detected);
                    prop_assert_eq!(shared.run.virtual_ms.to_bits(), isolated.run.virtual_ms.to_bits());
                }
                _ => unreachable!("only fixed selects and aggregates are registered here"),
            }
        }
    }
}

/// The engine's `estimate_aggregate` wrapper (one tumbling window through
/// the pipeline) reproduces the legacy eager estimator bit for bit at the
/// engine's own seed derivation.
#[test]
fn engine_estimate_aggregate_wrapper_matches_legacy_bit_for_bit() {
    use vmq::engine::{EngineConfig, FilterChoice, VmqEngine};
    let engine = VmqEngine::new(EngineConfig::small(DatasetProfile::jackson()).with_sizes(40, 200));
    let profile = CalibrationProfile::od_like();
    let wrapper = engine.estimate_aggregate(&Query::paper_a1(), FilterChoice::Calibrated(profile), 25, 30);

    // Replicate the legacy path by hand: the engine seeds the sampler with
    // `config.seed ^ 0xA66` and resolves the calibrated filter at
    // `config.seed`.
    let config = engine.config();
    let filter = CalibratedFilter::new(config.filter.classes.clone(), config.filter.grid, profile, config.seed);
    let legacy = AggregateEstimator::new(Query::paper_a1(), 25, config.seed ^ 0xA66).run(
        engine.dataset().test(),
        &filter,
        &vmq::detect::OracleDetector::perfect(),
        30,
    );
    assert_eq!(wrapper.plain_mean.to_bits(), legacy.plain_mean.to_bits());
    assert_eq!(wrapper.cv_mean.to_bits(), legacy.cv_mean.to_bits());
    assert_eq!(wrapper.mcv_mean.to_bits(), legacy.mcv_mean.to_bits());
    assert_eq!(wrapper.plain_variance.to_bits(), legacy.plain_variance.to_bits());
    assert_eq!(wrapper.cv_variance.to_bits(), legacy.cv_variance.to_bits());
    assert_eq!(wrapper.mcv_variance.to_bits(), legacy.mcv_variance.to_bits());
    assert_eq!(wrapper.true_fraction.to_bits(), legacy.true_fraction.to_bits());
}
