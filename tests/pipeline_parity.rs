//! Parity tests of the batched operator pipeline against the eager,
//! frame-at-a-time execution semantics the original executor implemented
//! (one decode + filter charge per frame, detector charge per surviving
//! frame, answers in stream order), plus a property test that recall is
//! monotone in the cascade tolerances.

use proptest::prelude::*;
use vmq::detect::{CostLedger, Detector, Stage};
use vmq::filters::{CalibratedFilter, CalibrationProfile, FilterKind, FrameFilter};
use vmq::query::plan::FilterCascade;
use vmq::query::planner::PlanChoice;
use vmq::query::{CascadeConfig, Query, QueryAccuracy, QueryExecutor};
use vmq::video::{Dataset, DatasetKind, DatasetProfile, Frame};

/// The eager reference semantics: the per-frame loop the seed's
/// `run_filtered` / `run_brute_force` implemented, charging every stage one
/// frame at a time. Returns `(matched_frames, frames_detected, virtual_ms)`.
fn eager_reference(
    query: &Query,
    frames: &[Frame],
    filter: Option<&dyn FrameFilter>,
    detector: &dyn Detector,
    cascade: Option<CascadeConfig>,
) -> (Vec<u64>, usize, f64) {
    let ledger = CostLedger::paper();
    let cascade = cascade.map(|config| FilterCascade::new(query.clone(), config));
    let mut matched = Vec::new();
    let mut detected = 0usize;
    for frame in frames {
        ledger.charge(Stage::Decode, 1);
        if let (Some(filter), Some(cascade)) = (filter, cascade.as_ref()) {
            ledger.charge(filter.kind().stage(), 1);
            let estimate = filter.estimate(frame);
            if !cascade.passes(&estimate, filter.threshold()) {
                continue;
            }
        }
        ledger.charge(detector.stage(), 1);
        detected += 1;
        if query.matches_detections(&detector.detect(frame)) {
            matched.push(frame.frame_id);
        }
    }
    (matched, detected, ledger.total_ms())
}

fn scenario(kind: DatasetKind) -> (Dataset, Query) {
    // The same dataset-to-query pairing end_to_end.rs exercises.
    let query = match kind {
        DatasetKind::Coral => Query::paper_q1(),
        DatasetKind::Jackson => Query::paper_q3(),
        DatasetKind::Detrac => Query::paper_q6(),
    };
    (Dataset::generate(&DatasetProfile::for_kind(kind), 40, 120, 17), query)
}

/// Filtered execution through the operator pipeline is byte-identical to the
/// eager per-frame semantics — matched frame ids, detector invocations and
/// the virtual-time total — on the end-to-end scenarios, for every batch
/// size, with both a perfect and a noisy (stochastic) filter.
#[test]
fn filtered_pipeline_matches_eager_semantics_exactly() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let classes = ds.profile().class_list();
        for profile in [CalibrationProfile::perfect(), CalibrationProfile::od_like()] {
            // The calibrated filter draws from a sequential RNG, so reference
            // and pipeline runs each get their own identically seeded copy.
            let fresh = || CalibratedFilter::new(classes.clone(), 16, profile, 99);
            let reference_filter = fresh();
            let (matched, detected, virtual_ms) =
                eager_reference(&query, ds.test(), Some(&reference_filter), &oracle, Some(CascadeConfig::strict()));
            for batch_size in [1usize, 7, 32, 1024] {
                let filter = fresh();
                let exec = QueryExecutor::new(query.clone()).with_batch_size(batch_size);
                let run = exec.run_filtered(ds.test(), &filter, &oracle, CascadeConfig::strict());
                assert_eq!(run.matched_frames, matched, "{kind:?} batch {batch_size}");
                assert_eq!(run.frames_detected, detected, "{kind:?} batch {batch_size}");
                assert_eq!(
                    run.virtual_ms.to_bits(),
                    virtual_ms.to_bits(),
                    "{kind:?} batch {batch_size}: {} vs {}",
                    run.virtual_ms,
                    virtual_ms
                );
            }
        }
    }
}

/// Brute-force execution through the pipeline matches the eager per-frame
/// semantics exactly as well.
#[test]
fn brute_force_pipeline_matches_eager_semantics_exactly() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let (matched, detected, virtual_ms) = eager_reference(&query, ds.test(), None, &oracle, None);
        for batch_size in [1usize, 13, 64] {
            let exec = QueryExecutor::new(query.clone()).with_batch_size(batch_size);
            let run = exec.run_brute_force(ds.test(), &oracle);
            assert_eq!(run.matched_frames, matched);
            assert_eq!(run.frames_detected, detected);
            assert_eq!(run.virtual_ms.to_bits(), virtual_ms.to_bits());
        }
    }
}

/// Same seed ⇒ identical `PlanChoice`, whatever the pipeline batch size.
/// The planner profiles candidates through `estimate_batch` in
/// pipeline-sized chunks, and chunking is covered by the batch parity
/// guarantee, so the plan must not depend on the batch size — even for the
/// stochastic calibrated filter (identically seeded copies per run).
#[test]
fn plan_choice_is_identical_across_batch_sizes() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let classes = ds.profile().class_list();
        let choices: Vec<PlanChoice> = [1usize, 7, 64]
            .iter()
            .map(|&batch_size| {
                let od = CalibratedFilter::new(classes.clone(), 16, CalibrationProfile::od_like(), 31);
                let ic = CalibratedFilter::new(classes.clone(), 16, CalibrationProfile::ic_like(), 32);
                let backends: Vec<&dyn FrameFilter> = vec![&od, &ic];
                let exec = QueryExecutor::new(query.clone()).with_batch_size(batch_size);
                let (_run, report) = exec.run_adaptive(ds.test(), 40, &backends, &CascadeConfig::lattice(), &oracle);
                report.choice
            })
            .collect();
        for choice in &choices[1..] {
            assert_eq!(choice.label, choices[0].label, "{kind:?}");
            assert_eq!(choice.cascade, choices[0].cascade, "{kind:?}");
            assert_eq!(choice.backend_index, choices[0].backend_index, "{kind:?}");
            assert_eq!(choice.expected_cost.to_bits(), choices[0].expected_cost.to_bits(), "{kind:?}");
            assert_eq!(choice.expected_selectivity.to_bits(), choices[0].expected_selectivity.to_bits(), "{kind:?}");
        }
    }
}

/// Adaptive execution is the chosen fixed pipeline plus a calibration bill:
/// its matched frame ids are byte-identical to running the chosen
/// `(backend, cascade)` through the fixed pipeline, and its virtual time is
/// exactly the fixed run's plus the reported calibration cost.
/// (Deterministic filters — the perfect calibrated backend — make the
/// comparison exact regardless of the extra calibration-time RNG draws.)
#[test]
fn adaptive_execution_matches_fixed_pipeline_with_chosen_config() {
    let oracle = vmq::detect::OracleDetector::perfect();
    for kind in [DatasetKind::Coral, DatasetKind::Jackson, DatasetKind::Detrac] {
        let (ds, query) = scenario(kind);
        let classes = ds.profile().class_list();
        let fresh = |fk: FilterKind| {
            CalibratedFilter::new(classes.clone(), 16, CalibrationProfile::perfect().emulating(fk), 77)
        };

        let od = fresh(FilterKind::Od);
        let ic = fresh(FilterKind::Ic);
        let backends: Vec<&dyn FrameFilter> = vec![&od, &ic];
        let exec = QueryExecutor::new(query.clone());
        let (adaptive, report) = exec.run_adaptive(ds.test(), 32, &backends, &CascadeConfig::lattice(), &oracle);

        let chosen_filter = fresh(if report.choice.backend == "IC" { FilterKind::Ic } else { FilterKind::Od });
        let fixed_exec = QueryExecutor::new(query.clone());
        let fixed = fixed_exec.run_filtered(ds.test(), &chosen_filter, &oracle, report.choice.cascade);

        assert_eq!(adaptive.matched_frames, fixed.matched_frames, "{kind:?}");
        assert_eq!(adaptive.frames_detected, fixed.frames_detected, "{kind:?}");
        assert_eq!(adaptive.frames_passed_filter, fixed.frames_passed_filter, "{kind:?}");
        assert!(
            (fixed.virtual_ms + report.calibration_ms - adaptive.virtual_ms).abs() < 1e-6,
            "{kind:?}: adaptive must cost exactly fixed + calibration: {} + {} vs {}",
            fixed.virtual_ms,
            report.calibration_ms,
            adaptive.virtual_ms
        );
        assert!(adaptive.mode.starts_with("adaptive "), "{}", adaptive.mode);
        assert_eq!(adaptive.stage_metrics[0].operator, "calibrate");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recall is monotone in the cascade tolerances: loosening the count or
    /// location tolerance never loses a frame the tighter cascade kept, so
    /// recall (and the pass count) can only grow. Identically seeded filter
    /// copies guarantee both runs see the same stochastic estimates.
    #[test]
    fn recall_is_monotone_in_cascade_tolerances(
        seed in 0u64..300,
        query_idx in 0usize..3,
        count_tol in 0u32..3,
        location_tol in 0usize..3,
        count_bump in 0u32..3,
        location_bump in 0usize..3,
    ) {
        let profile = DatasetProfile::jackson();
        let ds = Dataset::generate(&profile, 10, 80, seed);
        let query = [Query::paper_q3(), Query::paper_q4(), Query::paper_q5()][query_idx].clone();
        let oracle = vmq::detect::OracleDetector::perfect();
        let fresh = || CalibratedFilter::new(profile.class_list(), 16, CalibrationProfile::od_like(), seed ^ 0xF1);

        let tight = CascadeConfig { count_tolerance: count_tol, location_tolerance: location_tol };
        let loose = CascadeConfig {
            count_tolerance: count_tol + count_bump,
            location_tolerance: location_tol + location_bump,
        };

        let exec = QueryExecutor::new(query.clone());
        let tight_run = exec.run_filtered(ds.test(), &fresh(), &oracle, tight);
        let loose_run = exec.run_filtered(ds.test(), &fresh(), &oracle, loose);

        let truth = exec.ground_truth(ds.test());
        let tight_recall = QueryAccuracy::compare(&tight_run.matched_frames, &truth).recall;
        let loose_recall = QueryAccuracy::compare(&loose_run.matched_frames, &truth).recall;

        prop_assert!(tight_run.frames_passed_filter <= loose_run.frames_passed_filter,
            "pass count must be monotone: {} > {}", tight_run.frames_passed_filter, loose_run.frames_passed_filter);
        prop_assert!(tight_recall <= loose_recall + 1e-6,
            "recall must be monotone: tight {tight_recall} vs loose {loose_recall}");
        // The looser run's answer set contains the tighter run's.
        for id in &tight_run.matched_frames {
            prop_assert!(loose_run.matched_frames.contains(id), "frame {id} lost when loosening tolerances");
        }
    }
}
