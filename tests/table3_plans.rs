//! Golden Table III plan harness: pins the adaptive planner's per-query
//! choices on a seeded q1–q7 workload.
//!
//! For every query the harness runs:
//!
//! * the **adaptive planner** (two calibrated backends — an OD-like filter
//!   with selective localisation and a cheaper IC-like filter with noisy,
//!   fp-heavy localisation — crossed with the full CCF×CLF tolerance
//!   lattice, calibrated on a 48-frame prefix), and
//! * the three **fixed presets** (`strict` / `tolerant` / `loose`) on the OD
//!   backend, plus the brute-force baseline.
//!
//! It asserts the paper-level guarantees the planner is built for:
//!
//! 1. **100 % accuracy on every query** — the chosen plan never loses a true
//!    frame, even though the backends' count estimates carry ±2 outliers
//!    that silently break every fixed preset on five of the seven queries.
//! 2. **Cost ≤ best fixed preset for ≥ 5 of 7 queries**, calibration
//!    included. When *no* preset reaches 100 % accuracy the comparison is
//!    counted as satisfied — the planner is then the only configuration
//!    honouring the accuracy contract at all (the snapshot still records the
//!    brute-force and best-preset costs, so nothing is hidden). On this
//!    workload that is the typical case: the outliers leave no lossless
//!    preset on five queries, and on the two where one exists (q2, q4) the
//!    unselective workload means the preset wins — adaptivity's value here
//!    is the accuracy guarantee, not raw cost. A separate absolute bound
//!    (adaptive ≤ 1.15 × brute force on *every* query) guards against cost
//!    regressions that the preset comparison alone would never see.
//! 3. The chosen plan labels match the committed golden snapshot
//!    (`tests/golden/table3_plans.txt`) byte for byte, so a planner
//!    regression shows up as a reviewable diff rather than silent drift.
//!
//! Regenerate the snapshot with `VMQ_UPDATE_GOLDEN=1 cargo test --test
//! table3_plans` after an intentional planner change.

use vmq::detect::OracleDetector;
use vmq::filters::{CalibratedFilter, CalibrationProfile, FrameFilter};
use vmq::query::{CascadeConfig, Query, QueryExecutor};
use vmq::video::{Dataset, DatasetKind, DatasetProfile};

/// Workload seed: datasets and filter noise are fully determined by it.
const SEED: u64 = 25;
/// Test-split length per dataset.
const TEST_FRAMES: usize = 400;
/// Calibration prefix length.
const PREFIX_FRAMES: usize = 48;
/// Committed snapshot location (relative to the workspace root).
const GOLDEN_PATH: &str = "tests/golden/table3_plans.txt";

/// The OD-like candidate backend: accurate localisation, good counts — but
/// with a realistic outlier tail (whole ±2 count errors from occlusions /
/// double detections) that makes exact and ±1 count tolerances unsafe.
fn backend_od() -> CalibrationProfile {
    CalibrationProfile { count_std: 0.1, cell_miss_rate: 0.0, cell_fp_rate: 0.002, ..CalibrationProfile::od_like() }
        .with_count_outliers(0.4)
}

/// The IC-like candidate backend: same count behaviour at a cheaper virtual
/// price, but localisation riddled with false-positive cells — safe (false
/// positives can only add passes under the existential grid semantics) yet
/// unselective for spatial queries, so the planner must weigh price against
/// selectivity per query.
fn backend_ic() -> CalibrationProfile {
    CalibrationProfile { count_std: 0.1, cell_miss_rate: 0.0, cell_fp_rate: 0.05, ..CalibrationProfile::ic_like() }
        .with_count_outliers(0.4)
}

/// The golden workload's dataset profiles. Detrac is sparsified (mean 3.2
/// objects/frame, bus-heavy mix) so q6/q7's "exactly one car and one bus"
/// predicate has a non-empty answer set at this scale — at the paper's
/// density of 15.8 objects/frame the 400-frame split contains no true frame
/// and every comparison would be vacuous.
fn profile_for(kind: DatasetKind) -> DatasetProfile {
    let mut profile = DatasetProfile::for_kind(kind);
    if kind == DatasetKind::Detrac {
        profile.mean_objects = 3.2;
        profile.std_objects = 1.8;
        profile.classes[0].fraction = 0.72;
        profile.classes[1].fraction = 0.26;
        profile.classes[2].fraction = 0.02;
    }
    profile
}

struct GoldenRow {
    line: String,
    recall: f32,
    beats_fixed: bool,
    adaptive_ms: f64,
    brute_ms: f64,
    calibration_ms: f64,
}

fn golden_rows() -> Vec<GoldenRow> {
    let oracle = OracleDetector::perfect();
    let cases: Vec<(DatasetKind, Query)> = vec![
        (DatasetKind::Coral, Query::paper_q1()),
        (DatasetKind::Coral, Query::paper_q2()),
        (DatasetKind::Jackson, Query::paper_q3()),
        (DatasetKind::Jackson, Query::paper_q4()),
        (DatasetKind::Jackson, Query::paper_q5()),
        (DatasetKind::Detrac, Query::paper_q6()),
        (DatasetKind::Detrac, Query::paper_q7()),
    ];

    cases
        .into_iter()
        .map(|(kind, query)| {
            let profile = profile_for(kind);
            let ds = Dataset::generate(&profile, 20, TEST_FRAMES, SEED);
            let classes = profile.class_list();

            // Adaptive: both backends, full tolerance lattice.
            let od = CalibratedFilter::new(classes.clone(), 16, backend_od(), SEED ^ 0xAB);
            let ic = CalibratedFilter::new(classes.clone(), 16, backend_ic(), SEED ^ 0xCD);
            let backends: Vec<&dyn FrameFilter> = vec![&od, &ic];
            let exec = QueryExecutor::new(query.clone());
            let (run, report) =
                exec.run_adaptive(ds.test(), PREFIX_FRAMES, &backends, &CascadeConfig::lattice(), &oracle);
            let accuracy = exec.accuracy(&run, ds.test());

            // Fixed baselines: every preset on the OD backend; the best is
            // the cheapest preset that kept 100 % recall.
            let mut best_fixed: Option<(&str, f64)> = None;
            for (name, preset) in [
                ("strict", CascadeConfig::strict()),
                ("tolerant", CascadeConfig::tolerant()),
                ("loose", CascadeConfig::loose()),
            ] {
                let filter = CalibratedFilter::new(classes.clone(), 16, backend_od(), SEED ^ 0xAB);
                let preset_exec = QueryExecutor::new(query.clone());
                let preset_run = preset_exec.run_filtered(ds.test(), &filter, &oracle, preset);
                let preset_accuracy = preset_exec.accuracy(&preset_run, ds.test());
                if preset_accuracy.recall >= 1.0
                    && best_fixed.is_none_or(|(_, best_ms)| preset_run.virtual_ms < best_ms)
                {
                    best_fixed = Some((name, preset_run.virtual_ms));
                }
            }
            let brute = QueryExecutor::new(query.clone()).run_brute_force(ds.test(), &oracle);

            let beats_fixed = match best_fixed {
                None => true, // no preset honours the accuracy contract
                Some((_, best_ms)) => run.virtual_ms <= best_ms,
            };
            let line = format!(
                "{:<3} {:<8} plan={:<28} recall={:.3} pass_rate={:.3} adaptive_ms={:<8.0} calibration_ms={:<6.0} best_preset={:<16} brute_ms={:<8.0} beats_fixed={}",
                query.name,
                kind.name(),
                run.mode,
                accuracy.recall,
                run.filter_pass_rate(),
                run.virtual_ms,
                report.calibration_ms,
                best_fixed.map_or("none".to_string(), |(name, ms)| format!("{name}:{ms:.0}")),
                brute.virtual_ms,
                beats_fixed,
            );
            GoldenRow {
                line,
                recall: accuracy.recall,
                beats_fixed,
                adaptive_ms: run.virtual_ms,
                brute_ms: brute.virtual_ms,
                calibration_ms: report.calibration_ms,
            }
        })
        .collect()
}

fn rendered(rows: &[GoldenRow]) -> String {
    let mut out = String::from(
        "# Golden Table III plans — adaptive planner choices on the seeded q1-q7 workload.\n\
         # Regenerate with: VMQ_UPDATE_GOLDEN=1 cargo test --test table3_plans\n",
    );
    for row in rows {
        out.push_str(&row.line);
        out.push('\n');
    }
    out
}

#[test]
fn adaptive_plans_match_golden_snapshot_with_full_accuracy() {
    let rows = golden_rows();

    // 1. The accuracy contract: 100 % recall on every query.
    for row in &rows {
        assert!(row.recall >= 1.0, "adaptive plan lost true frames: {}", row.line);
    }

    // 2. Cost: at least 5 of 7 queries beat the best fixed preset
    //    (calibration included).
    let wins = rows.iter().filter(|r| r.beats_fixed).count();
    assert!(wins >= 5, "only {wins}/7 queries beat the best fixed preset:\n{}", rendered(&rows));

    // 2b. The brute-force floor: the planner always includes the no-cascade
    //     plan as a candidate and prices cascades with a conservative
    //     upper-confidence pass rate, so the chosen plan's *expected* cost
    //     never exceeds brute force — and on this pinned workload the
    //     realized cost honours the same bound: adaptive ≤ brute + its own
    //     calibration bill on every query. (A stream whose tail is far less
    //     selective than the prefix could in principle realize above the
    //     expected-cost floor; if a regenerated workload ever trips this,
    //     check whether the planner mispriced or the workload is simply
    //     adversarial before widening the bound.) This is the guard that
    //     actually catches adaptive cost blow-ups — the preset comparison
    //     alone is vacuous when no preset is lossless.
    for row in &rows {
        assert!(
            row.adaptive_ms <= row.brute_ms + row.calibration_ms + 1e-6,
            "adaptive cost above the brute-force floor ({:.0} ms vs brute {:.0} + calibration {:.0} ms): {}",
            row.adaptive_ms,
            row.brute_ms,
            row.calibration_ms,
            row.line
        );
    }

    // 3. The plan choices are pinned by the committed snapshot.
    let text = rendered(&rows);
    if std::env::var("VMQ_UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &text).expect("write golden snapshot");
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH} (run with VMQ_UPDATE_GOLDEN=1 to create it): {e}"));
    assert_eq!(
        text, golden,
        "adaptive plan choices drifted from the golden snapshot; if intentional, regenerate with VMQ_UPDATE_GOLDEN=1"
    );
}
