//! Gate: the whole workspace passes `vmq-lint` with zero findings.
//!
//! This is the teeth behind the invariant catalog (see DESIGN.md,
//! "Invariants & lint catalog"): any new `unsafe` without an audited
//! `// SAFETY:` comment, hash-order iteration, wall-clock read, raw thread
//! spawn or entropy-seeded RNG fails plain `cargo test` — not just the
//! dedicated CI lint job.

use std::path::Path;

#[test]
fn workspace_has_zero_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = vmq_lint::run_workspace(root).expect("workspace scan");
    assert!(report.files_scanned > 50, "suspiciously few files scanned: {}", report.files_scanned);
    assert!(
        report.findings.is_empty(),
        "vmq-lint found {} violation(s):\n{}",
        report.findings.len(),
        vmq_lint::report::render_human(&report.findings, report.files_scanned)
    );
}
