//! Golden Table IV aggregate harness: pins the streaming hopping-window
//! control-variate estimators on a seeded a1–a5 workload.
//!
//! Every query runs end-to-end through the batched operator pipeline's
//! aggregate mode (`Source → WindowFilter → AggregateSink`): the cheap OD
//! filter computes indicator columns over *every* frame, the stream is
//! segmented into hopping windows, and per window the estimator samples
//! `SAMPLE` frames for the expensive detector across `TRIALS` independent
//! trials, comparing the plain, single-CV and multiple-CV estimators — the
//! paper's "Variance Reduction" column, one row per window.
//!
//! The harness asserts the paper-level claims:
//!
//! 1. **Variance reduction > 1× on every window of every query** — the
//!    control variates never hurt at Table IV's operating point.
//! 2. **MCV ≤ CV on the multi-predicate queries** (a3, a5): per-predicate
//!    controls explain at least as much variance as the single conjunction
//!    indicator.
//! 3. **Honest cost accounting** — stage metrics prove the filter ran
//!    window-wide (every frame) while the detector ran only on the sampled
//!    frames (`windows × SAMPLE × TRIALS` invocations exactly).
//! 4. The per-window estimates match the committed golden snapshot
//!    (`tests/golden/table4_aggregates.txt`) byte for byte.
//!
//! Dataset profiles are tuned the same way the Table III golden tunes
//! Detrac: densities and class mixes are adjusted so each aggregate query
//! has a non-degenerate true fraction at this 400-frame quick scale (at the
//! paper's densities, e.g., DeTRAC's 15.8 objects/frame makes a3's
//! "exactly three objects" vacuously false on every frame).
//!
//! Regenerate the snapshot with `VMQ_UPDATE_GOLDEN=1 cargo test --test
//! table4_aggregates -- --include-ignored` after an intentional estimator
//! change.

use vmq::aggregate::WindowedAggregator;
use vmq::detect::{OracleDetector, Stage};
use vmq::filters::{CalibratedFilter, CalibrationProfile, FrameFilter};
use vmq::query::{AggregateSpec, Query, QueryExecutor};
use vmq::video::{Dataset, DatasetProfile};

/// Workload seed: datasets and filter noise are fully determined by it.
const SEED: u64 = 25;
/// Test-split length per dataset.
const TEST_FRAMES: usize = 400;
/// Frames the detector evaluates per trial.
const SAMPLE: usize = 80;
/// Independent estimation trials per window (the paper's count).
const TRIALS: usize = 100;
/// Hopping window: 200 frames advancing by 100 → three windows per stream.
const WINDOW: (usize, usize) = (200, 100);
/// Committed snapshot location (relative to the workspace root).
const GOLDEN_PATH: &str = "tests/golden/table4_aggregates.txt";

/// Per-query dataset profiles, tuned so every aggregate query has a
/// non-degenerate answer at quick scale.
fn profile_for(query: &str) -> DatasetProfile {
    match query {
        // a1: car in the lower-right quadrant — the stock Jackson profile
        // already puts the true fraction near 0.25.
        "a1" => DatasetProfile::jackson(),
        // a2: car left of a person — Jackson's 1.2 objects/frame and 20 %
        // person share make co-occurrence (and hence the spatial predicate)
        // too rare to estimate; densify and balance the mix.
        "a2" => {
            let mut p = DatasetProfile::jackson();
            p.mean_objects = 3.5;
            p.std_objects = 1.2;
            p.classes[0].fraction = 0.55;
            p.classes[1].fraction = 0.45;
            p
        }
        // a3 / a4: DeTRAC at the paper's 15.8 objects/frame never has
        // "exactly three objects"; sparsify (the Table III golden does the
        // same) and raise the bus share so a3's bus predicate can hold.
        "a3" | "a4" => {
            let mut p = DatasetProfile::detrac();
            p.mean_objects = 3.0;
            p.std_objects = 1.2;
            p.classes[0].fraction = 0.58;
            p.classes[1].fraction = 0.38;
            p.classes[2].fraction = 0.04;
            // Mix the count process fast enough that every 200-frame window
            // contains exactly-three-object frames (DeTRAC's slow reversion
            // would otherwise leave whole windows without a true a3 frame).
            p.count_reversion = 0.5;
            p
        }
        // a5: exactly three people, two in the lower-left — Coral's mean of
        // 8.7 people/frame makes count-three frames vanishingly rare.
        "a5" => {
            let mut p = DatasetProfile::coral();
            p.mean_objects = 3.0;
            p.std_objects = 1.2;
            p.count_reversion = 0.5;
            p
        }
        other => panic!("unknown aggregate query {other}"),
    }
}

fn queries() -> Vec<Query> {
    vec![Query::paper_a1(), Query::paper_a2(), Query::paper_a3(), Query::paper_a4(), Query::paper_a5()]
}

struct GoldenRow {
    line: String,
    query: String,
    multi_predicate: bool,
    best_reduction: f64,
    cv_variance: f64,
    mcv_variance: f64,
    plain_variance: f64,
}

fn golden_rows() -> Vec<GoldenRow> {
    let oracle = OracleDetector::perfect();
    let mut rows = Vec::new();
    for query in queries() {
        let profile = profile_for(&query.name);
        let ds = Dataset::generate(&profile, 20, TEST_FRAMES, SEED);
        let filter = CalibratedFilter::new(profile.class_list(), 16, CalibrationProfile::od_like(), SEED ^ 0x7A);
        let backends: Vec<&dyn FrameFilter> = vec![&filter];
        let mut agg = WindowedAggregator::new(query.clone(), SAMPLE, TRIALS, SEED ^ 0xA66);
        let exec = QueryExecutor::new(query.clone());
        let run = exec.run_aggregate(ds.test(), AggregateSpec::new(WINDOW.0, WINDOW.1), &backends, &oracle, &mut agg);

        // 3. Honest cost accounting: the filter saw every frame, the
        //    detector only the sampled ones.
        let windows = agg.reports().len();
        let window_filter = run
            .stage_metrics
            .iter()
            .find(|m| m.operator == "window-filter")
            .expect("aggregate plans carry a window-filter stage");
        assert_eq!(window_filter.frames_in, TEST_FRAMES, "filter must run window-wide");
        assert_eq!(window_filter.frames_out, TEST_FRAMES, "the window filter drops nothing");
        let expected_detections = windows * SAMPLE * TRIALS;
        assert_eq!(
            run.frames_detected, expected_detections,
            "detector invocations must be bounded by sample_size × trials per window"
        );
        assert_eq!(exec.ledger().invocations(Stage::MaskRcnn) as usize, expected_detections);
        assert_eq!(exec.ledger().invocations(filter.kind().stage()) as usize, TEST_FRAMES);
        let sink = run.stage_metrics.iter().find(|m| m.operator == "aggregate-sink").expect("sink row");
        assert!((sink.virtual_ms - 200.0 * expected_detections as f64).abs() < 1e-9);

        let multi_predicate = query.predicates.len() > 1;
        for report in agg.reports() {
            let line = format!(
                "{:<3} {:<8} w{} start={:<4} true={:.3} plain_var={:.3e} cv_var={:.3e} mcv_var={:.3e} best_reduction={:<8.2} corr={:.2} backend={}",
                report.query,
                profile.kind.name(),
                report.window_index,
                report.window_start,
                report.true_fraction,
                report.plain_variance,
                report.cv_variance,
                report.mcv_variance,
                report.best_reduction(),
                report.mean_correlation,
                report.backend,
            );
            rows.push(GoldenRow {
                line,
                query: report.query.clone(),
                multi_predicate,
                best_reduction: report.best_reduction(),
                cv_variance: report.cv_variance,
                mcv_variance: report.mcv_variance,
                plain_variance: report.plain_variance,
            });
        }
    }
    rows
}

fn rendered(rows: &[GoldenRow]) -> String {
    let mut out = String::from(
        "# Golden Table IV aggregates — streaming hopping-window CV/MCV estimates on the seeded a1-a5 workload.\n\
         # Regenerate with: VMQ_UPDATE_GOLDEN=1 cargo test --test table4_aggregates -- --include-ignored\n",
    );
    for row in rows {
        out.push_str(&row.line);
        out.push('\n');
    }
    out
}

#[test]
#[ignore = "the 100-trial Table IV golden harness runs in the release --include-ignored CI step"]
fn windowed_aggregates_match_golden_snapshot_with_variance_reduction() {
    let rows = golden_rows();
    assert_eq!(rows.len(), 5 * 3, "five queries × three hopping windows");

    // 1. Variance reduction on every window of every query.
    for row in &rows {
        assert!(row.plain_variance > 0.0, "plain estimator must have variance: {}", row.line);
        assert!(row.best_reduction > 1.0, "control variates must reduce variance: {}", row.line);
    }

    // 2. The paper-scale MCV claim, per query pooled across its windows:
    //    per-predicate controls explain at least as much variance as the
    //    single conjunction control on the multi-predicate queries. (Pooled
    //    rather than per window because the empirical variance of 100
    //    trials has ±1 % noise from the fitted β̂, which would make a
    //    strict per-window comparison a coin flip when the two estimators
    //    are near-equal.)
    let mut by_query: std::collections::BTreeMap<&str, (f64, f64, usize)> = std::collections::BTreeMap::new();
    for row in rows.iter().filter(|r| r.multi_predicate) {
        let entry = by_query.entry(row.query.as_str()).or_insert((0.0, 0.0, 0));
        entry.0 += row.cv_variance;
        entry.1 += row.mcv_variance;
        entry.2 += 1;
    }
    assert_eq!(by_query.len(), 2, "a3 and a5 are the multi-predicate aggregates");
    for (query, (cv_sum, mcv_sum, windows)) in by_query {
        assert!(
            mcv_sum <= cv_sum,
            "MCV must not lose to single-CV on multi-predicate {query}: mean mcv {} vs mean cv {} over {windows} windows",
            mcv_sum / windows as f64,
            cv_sum / windows as f64
        );
    }

    // 4. The per-window estimates are pinned by the committed snapshot.
    let text = rendered(&rows);
    if std::env::var("VMQ_UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &text).expect("write golden snapshot");
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH} (run with VMQ_UPDATE_GOLDEN=1 to create it): {e}"));
    assert_eq!(
        text, golden,
        "windowed aggregate estimates drifted from the golden snapshot; if intentional, regenerate with VMQ_UPDATE_GOLDEN=1"
    );
}
