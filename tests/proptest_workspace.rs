//! Workspace-level property tests: invariants that span multiple crates
//! (simulator → detector → filters → query → aggregates).

use proptest::prelude::*;
use vmq::detect::{Detector, OracleDetector};
use vmq::filters::{CalibratedFilter, CalibrationProfile, FrameFilter};
use vmq::query::{CascadeConfig, FilterCascade, Query, QueryExecutor};
use vmq::video::{DatasetProfile, Scene, SceneConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any simulated Jackson segment and any paper query on that dataset,
    /// a perfect calibrated filter with a tolerant cascade reports exactly
    /// the brute-force answer set (no false drops, no spurious matches).
    #[test]
    fn filtered_equals_brute_force_with_perfect_filter(seed in 0u64..500, query_idx in 0usize..3) {
        let profile = DatasetProfile::jackson();
        let mut scene = Scene::new(SceneConfig::from_profile(&profile), seed);
        let frames: Vec<_> = (0..60).map(|_| scene.step()).collect();
        let query = [Query::paper_q3(), Query::paper_q4(), Query::paper_q5()][query_idx].clone();
        let filter = CalibratedFilter::new(profile.class_list(), 16, CalibrationProfile::perfect(), seed);
        let oracle = OracleDetector::perfect();

        let brute = QueryExecutor::new(query.clone()).run_brute_force(&frames, &oracle);
        let filtered = QueryExecutor::new(query).run_filtered(&frames, &filter, &oracle, CascadeConfig::tolerant());
        prop_assert_eq!(brute.matched_frames, filtered.matched_frames);
        prop_assert!(filtered.frames_detected <= brute.frames_detected);
    }

    /// The oracle detector is exactly faithful to the simulator's ground
    /// truth for every frame the scene produces.
    #[test]
    fn oracle_is_faithful(seed in 0u64..500, profile_idx in 0usize..3) {
        let profile = DatasetProfile::all()[profile_idx].clone();
        let mut scene = Scene::new(SceneConfig::from_profile(&profile), seed);
        let oracle = OracleDetector::perfect();
        for _ in 0..20 {
            let frame = scene.step();
            let detections = oracle.detect(&frame);
            prop_assert_eq!(detections.count(), frame.object_count());
            for c in profile.class_list() {
                prop_assert_eq!(detections.class_count(c), frame.class_count(c));
            }
        }
    }

    /// The cascade's virtual cost is monotone in the number of frames: a
    /// prefix of the stream never costs more than the whole stream.
    #[test]
    fn cost_monotone_in_stream_length(seed in 0u64..200, cut in 5usize..40) {
        let profile = DatasetProfile::detrac();
        let mut scene = Scene::new(SceneConfig::from_profile(&profile), seed);
        let frames: Vec<_> = (0..50).map(|_| scene.step()).collect();
        let oracle = OracleDetector::perfect();
        let query = Query::paper_q6();

        // Use two identically seeded filters so the (stochastic) calibrated
        // filter makes the same per-frame decisions on the shared prefix.
        let filter_full = CalibratedFilter::new(profile.class_list(), 16, CalibrationProfile::od_like(), seed);
        let filter_prefix = CalibratedFilter::new(profile.class_list(), 16, CalibrationProfile::od_like(), seed);
        let full = QueryExecutor::new(query.clone()).run_filtered(&frames, &filter_full, &oracle, CascadeConfig::tolerant());
        let prefix = QueryExecutor::new(query).run_filtered(&frames[..cut.min(frames.len())], &filter_prefix, &oracle, CascadeConfig::tolerant());
        prop_assert!(prefix.virtual_ms <= full.virtual_ms + 1e-9);
        prop_assert!(prefix.matched_frames.len() <= full.matched_frames.len());
    }

    /// Per-predicate cascade indicators never contradict ground truth when the
    /// filter is perfect: if the full query truly holds, every indicator is 1.
    #[test]
    fn indicators_respect_ground_truth(seed in 0u64..300) {
        let profile = DatasetProfile::jackson();
        let mut scene = Scene::new(SceneConfig::from_profile(&profile), seed);
        let filter = CalibratedFilter::new(profile.class_list(), 16, CalibrationProfile::perfect(), 1);
        let query = Query::paper_q5();
        let cascade = FilterCascade::new(query.clone(), CascadeConfig::tolerant());
        for _ in 0..30 {
            let frame = scene.step();
            if query.matches_ground_truth(&frame) {
                let est = filter.estimate(&frame);
                let indicators = cascade.predicate_indicators(&est, filter.threshold());
                prop_assert!(indicators.iter().all(|&b| b), "indicators {indicators:?} on a true frame");
            }
        }
    }
}
