//! Pool-vs-reference parity: every sharded stage — the IC / OD / OD-COF
//! filters, their int8 twins, the calibrated backend, detector escalation
//! through the shared plan, and net batch inference — must be bit-identical
//! between the persistent `vmq_exec` pool and the `VMQ_NO_POOL=1`
//! spawn-per-task reference path, across batch sizes {1, 7, 32} × worker
//! counts {1, 2, 4}. The fleet's cross-camera detect coalescing gets the
//! same treatment: coalesced-on-the-pool vs uncoalesced-on-spawned-threads
//! must agree on every statement outcome.
//!
//! The execution mode is a process-global toggle; both paths compute
//! identical results by contract, so flipping it around a run can never make
//! a comparison fail spuriously — it only decides which path provides the
//! sample under comparison. CI additionally runs the whole suite in a
//! separate `VMQ_NO_POOL=1` process, which pins the reference path against
//! every golden in the repository.

use proptest::prelude::*;
use vmq::detect::{CostLedger, DetectionCache, OracleDetector};
use vmq::engine::{FleetConfig, FleetRuntime};
use vmq::filters::{
    CalibratedFilter, CalibrationProfile, CofFilter, FilterConfig, FilterEstimate, FrameFilter, IcFilter, OdFilter,
    QuantizedCofFilter, QuantizedIcFilter, QuantizedOdFilter,
};
use vmq::nn::{Act, Activation, Dense, Sequential, Tensor};
use vmq::query::{CascadeConfig, PipelineConfig, Query, QueryRun, SharedStreamPlan};
use vmq::video::{DatasetProfile, Frame, ObjectClass, Scene, SceneConfig};

/// Runs `f` with the executor pinned to the pool (`spawn = false`) or the
/// spawn-per-task reference (`spawn = true`), restoring the prior mode.
fn with_mode<R>(spawn: bool, f: impl FnOnce() -> R) -> R {
    let was = vmq::exec::spawn_mode();
    vmq::exec::set_spawn_mode(spawn);
    let out = f();
    vmq::exec::set_spawn_mode(was);
    out
}

fn scene_frames(camera: u32, seed: u64, n: usize) -> Vec<Frame> {
    let config = SceneConfig::from_profile(&DatasetProfile::jackson()).with_camera(camera);
    let mut scene = Scene::new(config, seed);
    (0..n).map(|_| scene.step()).collect()
}

fn assert_estimates_bit_identical(a: &[FilterEstimate], b: &[FilterEstimate], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}");
    for (i, (ea, eb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ea.counts, eb.counts, "{ctx} frame {i} counts");
        assert_eq!(ea.total_hint, eb.total_hint, "{ctx} frame {i} total_hint");
        for (ga, gb) in ea.grids.iter().zip(&eb.grids) {
            assert_eq!(ga.cells(), gb.cells(), "{ctx} frame {i} grid");
        }
    }
}

fn assert_runs_bit_identical(a: &[QueryRun], b: &[QueryRun], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.matched_frames, rb.matched_frames, "{ctx} {}", ra.query);
        assert_eq!(ra.frames_passed_filter, rb.frames_passed_filter, "{ctx} {}", ra.query);
        assert_eq!(ra.frames_detected, rb.frames_detected, "{ctx} {}", ra.query);
        assert_eq!(ra.virtual_ms.to_bits(), rb.virtual_ms.to_bits(), "{ctx} {}", ra.query);
    }
}

/// One shared-plan pass (CAL backend + q3 select, fresh cache and ledgers)
/// over `frames`: filter sharding, detect sharding and cache probing all run
/// under whatever executor mode is active.
fn shared_plan_run(frames: &[Frame], cal_seed: u64, workers: usize, batch: usize) -> Vec<QueryRun> {
    let oracle = OracleDetector::perfect();
    let classes = DatasetProfile::jackson().class_list();
    let filter = CalibratedFilter::new(classes, 14, CalibrationProfile::od_like(), cal_seed);
    let mut plan = SharedStreamPlan::new(
        &oracle,
        DetectionCache::new(),
        CostLedger::paper(),
        PipelineConfig::with_batch_size(batch),
    )
    .with_workers(workers);
    let b = plan.add_backend(&filter);
    plan.register_select(Query::paper_q3(), CascadeConfig::strict(), Some(b), CostLedger::paper());
    plan.execute_slice(frames)
}

/// A three-camera select-only fleet over identically seeded scenes; the
/// coalesce budget is the only knob that varies between comparisons.
fn fleet_run(budget: usize, workers: usize, frames_per_camera: usize) -> Vec<QueryRun> {
    let oracle = OracleDetector::perfect();
    let classes = DatasetProfile::jackson().class_list();
    let filters: Vec<CalibratedFilter> =
        (0..3).map(|c| CalibratedFilter::new(classes.clone(), 14, CalibrationProfile::od_like(), 77 + c)).collect();
    let mut fleet = FleetRuntime::new(
        &oracle,
        FleetConfig { batch_size: 16, workers, queue_capacity: 512, coalesce_budget: budget, ..FleetConfig::default() },
    );
    for (c, filter) in filters.iter().enumerate() {
        let config = SceneConfig::from_profile(&DatasetProfile::jackson()).with_camera(c as u32);
        let cam = fleet.add_camera(Scene::new(config, 4000 + c as u64));
        let b = fleet.add_backend(cam, filter);
        fleet.register_select(cam, "acme", Query::paper_q3(), CascadeConfig::strict(), Some(b));
    }
    for _ in 0..3 {
        fleet.ingest(frames_per_camera / 3);
        fleet.poll();
    }
    fleet.finish().statements.into_iter().map(|s| s.run).collect()
}

proptest! {
    // Each case sweeps the full matrix under both executor modes; a few
    // random scenes give the coverage without minutes of wall time.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// IC / OD / OD-COF, their int8 twins and the calibrated backend:
    /// sharded batch estimates from the pool match the spawn-per-task
    /// reference bit for bit across the {1, 7, 32} × {1, 2, 4} matrix.
    #[test]
    fn filter_stages_match_between_pool_and_spawn_reference(
        seed in 0u64..500,
        nframes in 1usize..33,
    ) {
        let frames = scene_frames(0, seed, nframes);
        let classes = vec![ObjectClass::Car, ObjectClass::Person, ObjectClass::Bus];
        let config = FilterConfig::fast_test(classes.clone());
        let ic = IcFilter::new(config.clone());
        let od = OdFilter::new(config.clone());
        let cof = CofFilter::new(config);
        let calib = &frames[..frames.len().min(4)];
        let ic8 = QuantizedIcFilter::from_trained(&ic, calib);
        let od8 = QuantizedOdFilter::from_trained(&od, calib);
        let cof8 = QuantizedCofFilter::from_trained(&cof, calib);
        for batch in [1usize, 7, 32] {
            for workers in [1usize, 2, 4] {
                for filter in [&ic as &dyn FrameFilter, &od, &cof, &ic8, &od8, &cof8] {
                    let run = |spawn: bool| {
                        with_mode(spawn, || {
                            let mut out: Vec<FilterEstimate> = Vec::new();
                            for chunk in frames.chunks(batch) {
                                out.extend(filter.estimate_batch_sharded(chunk, workers));
                            }
                            out
                        })
                    };
                    let ctx = format!("{:?} batch={batch} workers={workers}", filter.kind());
                    assert_estimates_bit_identical(&run(false), &run(true), &ctx);
                }
                // The calibrated backend consumes one sequential RNG stream,
                // so each mode gets a fresh identically seeded instance.
                let run_cal = |spawn: bool| {
                    with_mode(spawn, || {
                        let filter = CalibratedFilter::new(classes.clone(), 12, CalibrationProfile::od_like(), seed);
                        let mut out: Vec<FilterEstimate> = Vec::new();
                        for chunk in frames.chunks(batch) {
                            out.extend(filter.estimate_batch_sharded(chunk, workers));
                        }
                        out
                    })
                };
                let ctx = format!("CAL batch={batch} workers={workers}");
                assert_estimates_bit_identical(&run_cal(false), &run_cal(true), &ctx);
            }
        }
    }

    /// Detector escalation through the shared plan (cache probe + sharded
    /// detect + exact eval): pooled and reference runs agree on matches,
    /// detector counts and the virtual-time bill, bit for bit.
    #[test]
    fn detect_stage_matches_between_pool_and_spawn_reference(
        seed in 0u64..500,
        nframes in 8usize..64,
    ) {
        let frames = scene_frames(1, seed, nframes);
        for batch in [1usize, 7, 32] {
            for workers in [1usize, 2, 4] {
                let pooled = with_mode(false, || shared_plan_run(&frames, seed, workers, batch));
                let spawned = with_mode(true, || shared_plan_run(&frames, seed, workers, batch));
                assert_runs_bit_identical(&pooled, &spawned, &format!("batch={batch} workers={workers}"));
            }
        }
    }

    /// Net batch inference: `infer_batch` on the pool equals the
    /// spawn-reference and the sequential per-input loop, for every batch
    /// size and worker count.
    #[test]
    fn net_inference_matches_between_pool_and_spawn_reference(seed in 0usize..100) {
        let net = Sequential::new(vec![
            Box::new(Dense::new(6, 5, seed as u64)),
            Box::new(Activation::new(Act::Tanh)),
            Box::new(Dense::new(5, 2, seed as u64 + 1)),
        ]);
        for batch in [1usize, 7, 32] {
            let inputs: Vec<Tensor> = (0..batch)
                .map(|i| Tensor::from_vec((0..6).map(|v| ((v + i * 17 + seed) as f32 * 0.23).sin()).collect(), vec![6]))
                .collect();
            let mut ws = vmq::nn::Workspace::new();
            let reference: Vec<Tensor> = inputs.iter().map(|x| net.infer(x, &mut ws)).collect();
            for workers in [1usize, 2, 4] {
                for spawn in [false, true] {
                    let got = with_mode(spawn, || net.infer_batch(&inputs, workers));
                    for (g, r) in got.iter().zip(&reference) {
                        prop_assert_eq!(g.data(), r.data(), "batch={} workers={} spawn={}", batch, workers, spawn);
                    }
                }
            }
        }
    }
}

/// The full cross: coalesced fleet sweeps on the persistent pool vs
/// uncoalesced sweeps on the spawn-per-task reference. Every statement
/// outcome must be bit-identical — coalescing and the executor are both
/// pure wall-clock knobs.
#[test]
fn fleet_coalesced_pool_matches_uncoalesced_spawn_reference() {
    let coalesced_pooled = with_mode(false, || fleet_run(1024, 2, 60));
    let uncoalesced_spawned = with_mode(true, || fleet_run(0, 2, 60));
    assert_runs_bit_identical(&coalesced_pooled, &uncoalesced_spawned, "fleet");
    // And a tiny budget (many chunked dispatches) against the plain pool.
    let tiny = with_mode(false, || fleet_run(2, 2, 60));
    assert_runs_bit_identical(&tiny, &coalesced_pooled, "fleet tiny budget");
}
