//! End-to-end integration tests: dataset generation → filter training →
//! query execution → aggregate estimation, across all workspace crates.

use vmq::detect::{OracleDetector, Stage};
use vmq::engine::{EngineConfig, FilterChoice, VmqEngine};
use vmq::filters::{CalibrationProfile, CountMetrics, TrainedFilters};
use vmq::query::{CascadeConfig, Query};
use vmq::video::{DatasetProfile, ObjectClass};

/// Train the learned filters on a small Jackson stream and verify that they
/// beat a trivial baseline on total-count estimation, and that the full query
/// path runs on top of them.
#[test]
fn learned_filters_end_to_end() {
    let mut config = EngineConfig::small(DatasetProfile::jackson()).with_sizes(120, 150);
    config.filter.schedule.epochs = 3;
    config.filter.schedule.count_only_epochs = 1;
    let mut engine = VmqEngine::new(config.clone());
    engine.train_filters();

    // Count accuracy of the learned IC filter must beat the "always predict
    // zero objects" baseline on the test split.
    let oracle = OracleDetector::perfect();
    let filters = engine.filters().expect("trained");
    let labels = filters.label_split(engine.dataset().test(), &oracle, &config.filter);
    let estimates = TrainedFilters::evaluate(&filters.ic, engine.dataset().test());
    let metrics = CountMetrics::total_count(&estimates, &labels);
    let zero_baseline = labels.iter().filter(|l| l.total_count() == 0.0).count() as f32 / labels.len() as f32;
    assert!(
        metrics.within_one > zero_baseline,
        "learned IC filter (within-1 {:.2}) should beat the zero baseline ({:.2})",
        metrics.within_one,
        zero_baseline
    );

    // Query execution on top of the learned OD filter completes and reports a
    // consistent cost breakdown.
    let outcome = engine.run_query(&Query::paper_q4(), FilterChoice::Od, CascadeConfig::strict());
    assert_eq!(outcome.run.frames_total, engine.dataset().test().len());
    assert!(outcome.run.frames_detected <= outcome.run.frames_total);
    assert!(outcome.run.virtual_ms > 0.0);
}

/// With a perfect calibrated filter and a strict cascade the filtered
/// execution must return exactly the brute-force answer set on every dataset
/// profile, while doing strictly less detector work whenever the query is
/// selective.
#[test]
fn filtered_execution_matches_brute_force_on_all_profiles() {
    for profile in DatasetProfile::all() {
        let engine = VmqEngine::new(EngineConfig::small(profile.clone()).with_sizes(40, 120));
        let query = match profile.kind {
            vmq::video::DatasetKind::Coral => Query::paper_q1(),
            vmq::video::DatasetKind::Jackson => Query::paper_q3(),
            vmq::video::DatasetKind::Detrac => Query::paper_q6(),
        };
        let outcome =
            engine.run_query(&query, FilterChoice::Calibrated(CalibrationProfile::perfect()), CascadeConfig::strict());
        assert!(
            outcome.accuracy.is_perfect(),
            "{}/{}: filtered run must equal brute force, got {:?}",
            profile.kind.name(),
            query.name,
            outcome.accuracy
        );
        assert!(outcome.run.frames_detected <= outcome.brute_force.frames_detected);
    }
}

/// The aggregate estimator reduces variance for a spatially-constrained
/// aggregate (the paper's a1) and its estimates stay close to the truth.
#[test]
fn aggregate_estimation_end_to_end() {
    let engine = VmqEngine::new(EngineConfig::small(DatasetProfile::jackson()).with_sizes(40, 400));
    let report =
        engine.estimate_aggregate(&Query::paper_a1(), FilterChoice::Calibrated(CalibrationProfile::od_like()), 40, 80);
    assert_eq!(report.window_frames, 400);
    assert!((report.plain_mean - report.true_fraction).abs() < 0.1);
    assert!((report.cv_mean - report.true_fraction).abs() < 0.1);
    assert!(report.best_reduction() > 1.5, "expected variance reduction, report: {report:?}");
}

/// The cost ledger of a filtered run reflects the cascade's selectivity: the
/// detector is only charged for frames that passed the filters.
#[test]
fn cost_accounting_is_consistent() {
    let engine = VmqEngine::new(EngineConfig::small(DatasetProfile::detrac()).with_sizes(30, 80));
    let query = Query::new("many-buses").class_count(ObjectClass::Bus, vmq::query::ast::CountOp::AtLeast, 3);
    let outcome =
        engine.run_query(&query, FilterChoice::Calibrated(CalibrationProfile::perfect()), CascadeConfig::strict());
    // virtual time = decode * N + filter * N + detector * passed
    let n = outcome.run.frames_total as f64;
    let expected = 0.05 * n + 1.9 * n + 200.0 * outcome.run.frames_detected as f64;
    assert!(
        (outcome.run.virtual_ms - expected).abs() < 1e-6,
        "virtual time {} should equal the cost-model arithmetic {}",
        outcome.run.virtual_ms,
        expected
    );
    let _ = Stage::MaskRcnn;
}
