//! Drift-injection suite: a stream whose regime flips mid-way invalidates
//! the calibration committed on the prefix. The drift monitor's audit
//! channel must notice the contradiction, re-plan to a still-certifiable
//! cascade, repair the missed window frames, and keep the whole exercise —
//! audit sentinels, replanning, catch-up — billed to the query's ledger so
//! the net speedup claim stays honest. Audit-off runs must be bit-identical
//! to a plain one-shot registration.

use proptest::prelude::*;
use vmq::query::DriftConfig;
use vmq_bench::drift::{run_drift_scenario, run_drift_scenario_seeded, scenario_drift_config, DRIFT_FLIP_AT};

/// With the monitor attached, the regime flip is detected, the plan is
/// swapped mid-stream (to a cascade, not brute force), recall is perfect,
/// and the run still beats brute force net of calibration/audit/replan.
#[test]
fn monitor_recovers_recall_after_regime_flip() {
    let outcome = run_drift_scenario(1, Some(scenario_drift_config()));

    // The one-shot prefix calibration certified a cascade (drift matters
    // only because the committed plan is a filter plan).
    assert!(!outcome.calibration.choice.brute_force, "prefix calibration should certify a cascade");

    // The monitor noticed the flip and swapped plans at least once, after
    // the flip, and its final committed plan is a cascade again.
    assert!(!outcome.run.replans.is_empty(), "monitor should replan after the regime flip");
    let last = outcome.run.replans.last().unwrap();
    assert!(last.at_offset >= DRIFT_FLIP_AT, "replan should happen after the flip (got {})", last.at_offset);
    assert!(!last.brute_force, "monitor should re-certify a cascade, not fall back to brute force");
    assert!(last.contradictions > 0, "replan should be driven by audit contradictions");

    // Audit sentinels actually ran and are visible in the accounting.
    assert!(outcome.run.audit_frames > 0, "audit channel should have escalated frames");

    // Recall is fully recovered: every ground-truth frame is reported.
    assert!(
        (outcome.recall - 1.0).abs() < f64::EPSILON,
        "recall should be 1.0 after recovery, got {} ({} truth frames)",
        outcome.recall,
        outcome.truth.len()
    );

    // No false positives either: matched ⊆ truth.
    for id in &outcome.run.matched_frames {
        assert!(outcome.truth.contains(id), "frame {id} reported but not a true match");
    }

    // And the run still pays for itself: brute / (virtual − calibration) ≥ 1,
    // with audit + replan + catch-up all inside `virtual`.
    assert!(
        outcome.net_speedup >= 1.0,
        "net speedup should stay ≥ 1.0 with audit and replan billed, got {:.3}",
        outcome.net_speedup
    );
}

/// Without the monitor the committed plan goes stale: recall collapses on
/// the post-flip regime and no replan events are recorded.
#[test]
fn stale_plan_loses_recall_without_monitor() {
    let outcome = run_drift_scenario(1, None);
    assert!(outcome.run.replans.is_empty());
    assert_eq!(outcome.run.audit_frames, 0);
    assert!(
        outcome.recall < 1.0,
        "without the monitor the stale plan should miss post-flip frames, got recall {}",
        outcome.recall
    );
}

/// The monitored run is bit-reproducible: worker count must not change the
/// matched set, the replan schedule, the audit count or the virtual bill.
#[test]
fn drifted_run_is_bit_identical_across_worker_counts() {
    let base = run_drift_scenario(1, Some(scenario_drift_config()));
    for workers in [2, 4] {
        let other = run_drift_scenario(workers, Some(scenario_drift_config()));
        assert_eq!(base.run.matched_frames, other.run.matched_frames, "workers={workers}");
        assert_eq!(base.run.replans, other.run.replans, "workers={workers}");
        assert_eq!(base.run.audit_frames, other.run.audit_frames, "workers={workers}");
        assert_eq!(base.run.frames_detected, other.run.frames_detected, "workers={workers}");
        assert!((base.run.virtual_ms - other.run.virtual_ms).abs() < 1e-9, "workers={workers}");
    }
}

/// Re-running the identical scenario reproduces the identical outcome —
/// the audit schedule is a pure function of (seed, camera, frame).
#[test]
fn drifted_run_is_reproducible_across_reruns() {
    let a = run_drift_scenario(2, Some(scenario_drift_config()));
    let b = run_drift_scenario(2, Some(scenario_drift_config()));
    assert_eq!(a.run.matched_frames, b.run.matched_frames);
    assert_eq!(a.run.replans, b.run.replans);
    assert_eq!(a.run.audit_frames, b.run.audit_frames);
    assert!((a.run.virtual_ms - b.run.virtual_ms).abs() < f64::EPSILON);
}

/// A disabled monitor (`audit_fraction = 0`) attaches nothing: the run is
/// bit-identical to a plain one-shot registration, not merely similar.
#[test]
fn audit_off_is_bit_identical_to_one_shot() {
    let off = run_drift_scenario(1, Some(DriftConfig::new(0.0)));
    let none = run_drift_scenario(1, None);
    assert_eq!(off.run.matched_frames, none.run.matched_frames);
    assert_eq!(off.run.frames_detected, none.run.frames_detected);
    assert_eq!(off.run.replans, none.run.replans);
    assert_eq!(off.run.audit_frames, none.run.audit_frames);
    assert!((off.run.virtual_ms - none.run.virtual_ms).abs() < f64::EPSILON);
    assert_eq!(off.run.mode, none.run.mode);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On any stream and worker count, `audit_fraction = 0` attaches no
    /// monitor at all: the run is bit-identical to a one-shot registration.
    #[test]
    fn audit_off_equals_one_shot_on_any_stream(seed in 0u64..1_000_000, workers in 1usize..=4) {
        let off = run_drift_scenario_seeded(workers, Some(DriftConfig::new(0.0)), seed);
        let none = run_drift_scenario_seeded(workers, None, seed);
        prop_assert_eq!(&off.run.matched_frames, &none.run.matched_frames);
        prop_assert_eq!(off.run.frames_detected, none.run.frames_detected);
        prop_assert_eq!(off.run.audit_frames, 0u64);
        prop_assert!(off.run.replans.is_empty());
        prop_assert_eq!(off.run.virtual_ms.to_bits(), none.run.virtual_ms.to_bits());
    }

    /// On any stream the monitored run reports no frame brute force would
    /// not: matched frames are always a subset of ground truth (audit
    /// corrections and catch-up repair insert only true frames).
    #[test]
    fn monitored_matches_are_always_true_matches(seed in 0u64..1_000_000) {
        let outcome = run_drift_scenario_seeded(1, Some(scenario_drift_config()), seed);
        for id in &outcome.run.matched_frames {
            prop_assert!(outcome.truth.contains(id), "frame {} is a false positive", id);
        }
    }
}
