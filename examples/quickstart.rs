//! Quickstart: train the approximate filters on a simulated surveillance
//! stream and run a declarative monitoring query with a filter cascade.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use vmq::engine::{CalibrationConfig, EngineConfig, FilterChoice, VmqEngine};
use vmq::query::{CascadeConfig, Query};
use vmq::video::DatasetProfile;

fn main() {
    // 1. Register a video source. The Jackson profile models a fixed camera
    //    over a quiet intersection (mostly cars, a few pedestrians).
    let config = EngineConfig::small(DatasetProfile::jackson()).with_sizes(150, 300);
    let mut engine = VmqEngine::new(config);
    println!(
        "dataset: {} ({} train frames, {} test frames)",
        engine.dataset().kind().name(),
        engine.dataset().train().len(),
        engine.dataset().test().len()
    );

    // 2. Train the IC / OD / OD-COF filters. Labels come from the expensive
    //    oracle detector, exactly as Mask R-CNN annotates the paper's data.
    println!("training filters...");
    engine.train_filters();

    // 3. Run query q3 of the paper: frames with exactly one car and exactly
    //    one person. The OD filter's count estimates gate the expensive
    //    detector; only candidate frames pay the 200 ms detection cost.
    let query = Query::paper_q3();
    let outcome = engine.run_query(&query, FilterChoice::Od, CascadeConfig::tolerant());

    println!("\n{}", outcome.summary());
    println!(
        "frames: {} total, {} passed the filter cascade, {} sent to the detector",
        outcome.run.frames_total, outcome.run.frames_passed_filter, outcome.run.frames_detected
    );
    println!(
        "matched frames: {:?}{}",
        &outcome.run.matched_frames[..outcome.run.matched_frames.len().min(10)],
        if outcome.run.matched_frames.len() > 10 { " ..." } else { "" }
    );
    println!(
        "virtual time: filtered {:.1}s vs brute force {:.1}s  (speedup {:.1}x, recall {:.0}%)",
        outcome.run.virtual_seconds(),
        outcome.brute_force.virtual_seconds(),
        outcome.speedup.speedup,
        outcome.accuracy.recall * 100.0
    );

    // 4. Per-operator breakdown of the batched execution pipeline.
    println!("\n{}", outcome.stage_report().render());

    // 5. Instead of guessing the cascade above, let the adaptive planner
    //    choose: it profiles the trained IC and OD backends against the full
    //    CCF/CLF tolerance lattice on a stream prefix and runs the cheapest
    //    combination that kept 100 % recall there. The reported virtual time
    //    includes the calibration bill (the `calibrate` row below).
    let adaptive = engine.run_adaptive(&query, &CalibrationConfig::learned());
    println!(
        "adaptive planner chose {} (expected selectivity {:.0}%)",
        adaptive.plan().label,
        adaptive.plan().expected_selectivity * 100.0
    );
    println!("\n{}", adaptive.summary());
    println!("\n{}", adaptive.stage_report().render());
}
