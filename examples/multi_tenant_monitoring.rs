//! Multi-tenant monitoring: many standing queries, one camera stream.
//!
//! The paper's setting is monitoring — q1–q7 and a1–a5 all watch the *same*
//! stream. This example registers a mixed workload (fixed selects, an
//! adaptively planned select and a windowed aggregate) with the shared
//! [`StreamRuntime`](vmq::engine::StreamRuntime) and runs everything in one
//! pass: the cheap filter runs once per frame, the expensive detector once
//! per frame *any* tenant escalates, and the combined bill is split across
//! the tenants in the shared-cost report.
//!
//! ```bash
//! cargo run --release --example multi_tenant_monitoring
//! ```

use vmq::aggregate::HoppingWindow;
use vmq::engine::{CalibrationConfig, EngineConfig, FilterChoice, RuntimeQuery, VmqEngine};
use vmq::filters::CalibrationProfile;
use vmq::query::{CascadeConfig, Query};
use vmq::video::DatasetProfile;

fn main() {
    // One camera: the Jackson intersection, 400 monitored frames.
    let engine = VmqEngine::new(EngineConfig::small(DatasetProfile::jackson()).with_sizes(60, 400));
    let choice = FilterChoice::Calibrated(CalibrationProfile::od_like());

    // Four tenants share the stream: two fixed selects, one select that
    // plans its own cascade on a calibration prefix, and one hopping-window
    // aggregate estimating the fraction of frames with a car.
    let statements = vec![
        RuntimeQuery::Select { query: Query::paper_q3(), choice, cascade: CascadeConfig::tolerant() },
        RuntimeQuery::Select { query: Query::paper_q4(), choice, cascade: CascadeConfig::tolerant() },
        RuntimeQuery::SelectAdaptive {
            query: Query::paper_q5(),
            calibration: CalibrationConfig::calibrated(vec![CalibrationProfile::od_like()]).with_prefix(40),
            drift: None,
        },
        RuntimeQuery::Aggregate {
            query: Query::paper_a1(),
            choice,
            window: HoppingWindow::new(100, 50),
            sample_size: 20,
            trials: 15,
        },
    ];

    // One shared pass, detect stage sharded across 4 workers.
    let outcome = engine.run_many_sharded(&statements, 4);

    println!("=== per-tenant outcomes (bit-identical to isolated runs) ===");
    for statement_outcome in &outcome.outcomes {
        let run = statement_outcome.run();
        if let Some(select) = statement_outcome.as_select() {
            println!("{}", select.summary());
        } else if let Some(adaptive) = statement_outcome.as_adaptive() {
            println!("{}", adaptive.summary());
        } else if let Some(aggregate) = statement_outcome.as_aggregate() {
            println!("{} [{}]: {} windows", run.query, run.mode, aggregate.reports.len());
            for report in &aggregate.reports {
                println!("  {}", report.table_row());
            }
        }
    }

    println!("\n=== shared-pass accounting ===");
    println!(
        "detector invocations: {} (one per distinct frame; {} lookups served from the shared cache)",
        outcome.detector_invocations, outcome.cache_hits
    );
    println!("{}", outcome.shared.summary());
    println!(
        "\nsharing the stream pass saved {:.1} virtual seconds ({:.2}x) over running the {} tenants in isolation",
        outcome.shared.saved_ms() / 1000.0,
        outcome.shared.speedup(),
        outcome.outcomes.len()
    );
}
