//! Fleet monitoring: many cameras × many standing statements, one process.
//!
//! Scales the multi-tenant example out to a camera fleet: every camera gets
//! its own simulated scene (seed, frame rate) and its own standing
//! statements, while the [`FleetRuntime`](vmq::engine::FleetRuntime)
//! provides the shared substrate — one byte-budgeted detection cache, one
//! fleet-global cost ledger with per-camera/per-tenant rollups, bounded
//! per-camera ingest queues and a round-robin scheduler that sheds
//! aggregate *sampling* (never select recall) under overload.
//!
//! ```bash
//! cargo run --release --example fleet_monitoring
//! ```

use vmq::aggregate::WindowedAggregator;
use vmq::detect::OracleDetector;
use vmq::engine::{FleetConfig, FleetRuntime};
use vmq::filters::{CalibratedFilter, CalibrationProfile};
use vmq::query::{AggregateSpec, CascadeConfig, Query};
use vmq::video::{camera_fleet, DatasetProfile};

const CAMERAS: usize = 12;
const FRAMES_PER_CAMERA: usize = 120;
const TENANTS: [&str; 3] = ["acme", "globex", "initech"];

fn main() {
    let oracle = OracleDetector::perfect();

    // Per-camera filter backends (each camera's calibrated filter runs its
    // own noise stream; a trained network could be shared by reference).
    let profiles = [DatasetProfile::jackson(), DatasetProfile::detrac()];
    let filters: Vec<CalibratedFilter> = (0..CAMERAS)
        .map(|c| CalibratedFilter::new(profiles[c % 2].class_list(), 14, CalibrationProfile::od_like(), 7 + c as u64))
        .collect();
    let mut estimators: Vec<WindowedAggregator> =
        (0..CAMERAS).map(|c| WindowedAggregator::new(Query::paper_a1(), 12, 8, 40 + c as u64)).collect();

    // Three statements per camera: two selects and a wall-clock-windowed
    // aggregate, owned by round-robin tenants.
    let mut fleet = FleetRuntime::new(
        &oracle,
        FleetConfig { batch_size: 32, workers: 2, queue_capacity: 64, ..FleetConfig::default() },
    );
    for ((c, scene), (filter, estimator)) in
        camera_fleet(&profiles, CAMERAS, 0xCA3).into_iter().enumerate().zip(filters.iter().zip(&mut estimators))
    {
        let tenant = TENANTS[c % TENANTS.len()];
        let cam = fleet.add_camera(scene);
        let b = fleet.add_backend(cam, filter);
        fleet.register_select(cam, tenant, Query::paper_q3(), CascadeConfig::strict(), Some(b));
        fleet.register_select(cam, tenant, Query::paper_q1(), CascadeConfig::tolerant(), Some(b));
        fleet.register_aggregate(
            cam,
            tenant,
            Query::paper_a1(),
            AggregateSpec::hopping_seconds(2.0, 2.0),
            &[b],
            estimator,
        );
    }

    // Ingest in bursts and let the scheduler interleave every camera's
    // batches through the shared cache and worker pool.
    for _ in 0..4 {
        let dropped = fleet.ingest(FRAMES_PER_CAMERA / 4);
        assert_eq!(dropped, 0, "queues sized for the burst");
        fleet.poll();
    }
    let outcome = fleet.finish();

    println!("=== fleet: {CAMERAS} cameras, {} standing statements ===", outcome.statements.len());
    println!(
        "frames {} | detector calls {} | cache hits {} | evictions {}",
        outcome.frames_ingested, outcome.detector_invocations, outcome.cache_hits, outcome.cache_evictions
    );

    println!("\n=== per-camera attribution (deduplicated fleet bill) ===");
    for group in &outcome.by_camera {
        println!(
            "{}: {} statements, attributed {:.0} ms (isolated would be {:.0} ms)",
            group.group, group.statements, group.attributed_ms, group.isolated_ms
        );
    }

    println!("\n=== per-tenant attribution ===");
    for group in &outcome.by_tenant {
        println!(
            "{}: {} statements, attributed {:.0} ms, saved {:.0} ms vs isolated",
            group.group,
            group.statements,
            group.attributed_ms,
            group.saved_ms()
        );
    }

    println!("\n=== sample statements (camera 0) ===");
    for stmt in outcome.statements.iter().take(3) {
        println!(
            "camera-{:02} [{}] {} [{}]: {} matches over {} frames, virtual {:.1} s",
            stmt.camera_id,
            stmt.tenant,
            stmt.name,
            stmt.run.mode,
            stmt.run.matched_frames.len(),
            stmt.run.frames_total,
            stmt.run.virtual_seconds()
        );
    }
    let windows: usize = estimators.iter().map(|e| e.reports().len()).sum();
    println!("\naggregates: {windows} wall-clock windows estimated across the fleet");
}
