//! Parking-violation monitoring (the paper's Fig. 1(b) motivation): flag
//! windows of the stream in which a car stays inside a no-parking zone for
//! most of the window — "a car next to the stop sign for more than 10
//! minutes may be parked illegally".
//!
//! The example builds a custom screen region (the no-parking zone), defines
//! the per-frame predicate "a car overlaps the zone", splits the stream into
//! hopping windows and estimates, for every window, the fraction of frames
//! satisfying the predicate using sampling with a control variate. Windows
//! whose estimated fraction exceeds a threshold are reported as violations.
//!
//! ```bash
//! cargo run --release --example parking_violation
//! ```

use vmq::aggregate::{AggregateEstimator, HoppingWindow};
use vmq::detect::OracleDetector;
use vmq::filters::{CalibratedFilter, CalibrationProfile};
use vmq::query::{ObjectRef, Query, RegionCatalog};
use vmq::video::{BoundingBox, DatasetProfile, FrameStream, ObjectClass, Scene, SceneConfig};

fn main() {
    let profile = DatasetProfile::jackson();

    // The no-parking zone: a strip along the bottom-right of the screen.
    let mut catalog = RegionCatalog::standard();
    catalog.insert("no-parking-zone", BoundingBox::new(0.55, 0.65, 0.45, 0.35));

    // Per-frame predicate: at least one car overlapping the zone.
    let query = Query::new("car-in-no-parking-zone")
        .in_region(ObjectRef::class(ObjectClass::Car), "no-parking-zone", 1)
        .with_catalog(catalog);

    // 4 minutes of simulated video at 30 fps, split into 30-second windows.
    let scene = Scene::new(SceneConfig::from_profile(&profile), 4242);
    let frames: Vec<_> = FrameStream::with_length(scene, 7200).collect();
    let window = HoppingWindow::from_duration(30.0, 30.0, profile.fps);
    println!("stream: {} frames, window = {} frames (30 s)", frames.len(), window.size);

    let filter = CalibratedFilter::new(profile.class_list(), 28, CalibrationProfile::od_like(), 3);
    let oracle = OracleDetector::perfect();
    let violation_threshold = 0.8; // car present for ≥ 80 % of the window

    println!("{:<10} {:>16} {:>14} {:>10}", "window", "est. occupancy", "true occupancy", "flag");
    for (w, (start, end)) in window.windows(frames.len()).into_iter().enumerate() {
        let estimator = AggregateEstimator::new(query.clone(), 60, 1000 + w as u64);
        let report = estimator.run(&frames[start..end], &filter, &oracle, 1);
        let flagged = report.cv_mean >= violation_threshold;
        println!(
            "{:<10} {:>15.1}% {:>13.1}% {:>10}",
            format!("{start}-{end}"),
            report.cv_mean * 100.0,
            report.true_fraction * 100.0,
            if flagged { "VIOLATION" } else { "-" }
        );
    }
    println!(
        "\nA window is flagged when the estimated occupancy of the no-parking zone exceeds {:.0}%.",
        violation_threshold * 100.0
    );
    println!("Each window samples only 60 frames with the expensive detector; the cheap filter runs on every frame as the control variate.");
}
