//! Aggregate monitoring with control variates (Section III of the paper).
//!
//! Estimates how often a car appears in the lower-right quadrant of a traffic
//! camera (the paper's aggregate query a1), comparing the plain sampling
//! estimator against the single- and multiple-control-variate estimators.
//! The experiment repeats the estimation many times to show the variance
//! reduction the control variates deliver.
//!
//! ```bash
//! cargo run --release --example aggregate_monitoring
//! ```

use vmq::aggregate::HoppingWindow;
use vmq::engine::{EngineConfig, FilterChoice, VmqEngine};
use vmq::filters::CalibrationProfile;
use vmq::query::Query;
use vmq::video::DatasetProfile;

fn main() {
    let engine = VmqEngine::new(EngineConfig::small(DatasetProfile::jackson()).with_sizes(60, 600));

    for (query, label) in
        [(Query::paper_a1(), "a1: car in the lower-right quadrant"), (Query::paper_a2(), "a2: car left of a person")]
    {
        println!("== {label} ==");
        let report = engine.estimate_aggregate(
            &query,
            FilterChoice::Calibrated(CalibrationProfile::od_like()),
            40,  // frames evaluated by the expensive detector per trial
            100, // independent trials
        );
        println!("  window:                {} frames", report.window_frames);
        println!("  true fraction:         {:.3}", report.true_fraction);
        println!("  plain estimator:       mean {:.3}, variance {:.6}", report.plain_mean, report.plain_variance);
        println!("  single control variate: mean {:.3}, variance {:.6}", report.cv_mean, report.cv_variance);
        println!("  multiple control variates: mean {:.3}, variance {:.6}", report.mcv_mean, report.mcv_variance);
        let best = report.best_reduction();
        if best.is_finite() {
            println!("  variance reduction:    {best:.1}x");
        } else {
            println!("  variance reduction:    infinite (CV estimator had zero variance)");
        }
        println!("  cost per sampled frame: {:.1} ms (filter + detector)", report.time_per_sample_ms);
        println!("  filter correlation:     {:.2}", report.mean_correlation);
        println!();
    }
    // The same estimation as a *stream* of hopping windows: the parsed
    // `WINDOW HOPPING (SIZE 200, ADVANCE BY 100)` clause runs end-to-end
    // through the batched operator pipeline, emitting one report per window.
    println!("== a1 over hopping windows (SIZE 200, ADVANCE BY 100) ==");
    let outcome = engine.run_aggregate_windows(
        &Query::paper_a1(),
        FilterChoice::Calibrated(CalibrationProfile::od_like()),
        HoppingWindow::new(200, 100),
        40,
        100,
    );
    for report in &outcome.reports {
        println!(
            "  window {} [{}..{}): true={:.3} plain_var={:.2e} cv_var={:.2e} reduction={:.1}x",
            report.window_index,
            report.window_start,
            report.window_start + report.window_frames,
            report.true_fraction,
            report.plain_variance,
            report.cv_variance,
            report.best_reduction()
        );
    }
    println!("{}", outcome.stage_report().render());
    println!();
    println!("The control variate is the cheap filter's verdict on each sampled frame; its mean over the whole window");
    println!("is known almost for free (the filter costs ~2 ms/frame vs 200 ms/frame for the detector), which is what");
    println!("turns the correlation into a variance reduction, exactly as in Table IV of the paper.");
}
