//! Traffic-intersection monitoring: spatial constraints between vehicles on a
//! dense traffic camera (the Detrac-style workload of the paper's intro).
//!
//! The query asks for frames where a car is to the left of a bus (query q7
//! without the exact-count constraints), evaluated with the streaming
//! executor: frames arrive through a bounded channel as they would from a
//! camera, the filter cascade decides which frames are worth detecting, and
//! the expensive detector confirms survivors.
//!
//! ```bash
//! cargo run --release --example traffic_intersection
//! ```

use vmq::detect::OracleDetector;
use vmq::filters::{CalibratedFilter, CalibrationProfile};
use vmq::query::exec::run_streaming;
use vmq::query::{CascadeConfig, ObjectRef, Query, SpatialRelation};
use vmq::video::{DatasetProfile, FrameStream, ObjectClass, Scene, SceneConfig};

fn main() {
    let profile = DatasetProfile::detrac();

    // A continuous monitoring query: a car to the left of a bus, with at
    // least one of each present.
    let query = Query::new("car-left-of-bus")
        .class_count(ObjectClass::Car, vmq::query::ast::CountOp::AtLeast, 1)
        .class_count(ObjectClass::Bus, vmq::query::ast::CountOp::AtLeast, 1)
        .spatial(ObjectRef::class(ObjectClass::Car), SpatialRelation::LeftOf, ObjectRef::class(ObjectClass::Bus));

    // The filter: here a calibrated OD-like filter so the example runs in a
    // couple of seconds; swap in a trained `OdFilter` (see the quickstart)
    // for the learned pipeline.
    let filter = CalibratedFilter::new(profile.class_list(), 28, CalibrationProfile::od_like(), 11);
    let oracle = OracleDetector::perfect();

    // A live stream of 2 000 frames from the simulated camera.
    let scene = Scene::new(SceneConfig::from_profile(&profile).with_camera(3), 99);
    let stream = FrameStream::with_length(scene, 2000);

    println!("monitoring 2000 frames of a simulated {} camera...", profile.kind.name());
    let run = run_streaming(&query, stream, &filter, &oracle, CascadeConfig::tolerant(), 64);

    println!("mode:                  {}", run.mode);
    println!("frames processed:      {}", run.frames_total);
    println!("passed filter cascade: {} ({:.1}%)", run.frames_passed_filter, run.filter_pass_rate() * 100.0);
    println!("frames matching query: {}", run.matched_frames.len());
    println!(
        "virtual time:          {:.1}s (brute force would cost {:.1}s)",
        run.virtual_seconds(),
        run.frames_total as f64 * 0.20005
    );
    println!(
        "filter wall-clock:     {:.1} ms total ({:.3} ms/frame)",
        run.filter_wall_ms,
        run.filter_wall_ms / run.frames_total as f64
    );
    let first: Vec<u64> = run.matched_frames.iter().take(10).copied().collect();
    println!("first matches:         {first:?}");
}
