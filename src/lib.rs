//! # vmq — Video Monitoring Queries
//!
//! Facade crate for the workspace reproducing *Video Monitoring Queries*
//! (Koudas, Li, Xarchakos — ICDE 2020). It re-exports the individual crates
//! under short module names so examples and downstream users can depend on a
//! single crate:
//!
//! * [`nn`] — the CPU neural-network substrate.
//! * [`video`] — synthetic video streams and dataset profiles.
//! * [`detect`] — oracle / mid-tier detectors and the virtual-time cost model.
//! * [`filters`] — the paper's IC and OD approximate filters.
//! * [`query`] — declarative queries, spatial predicates and the executor.
//! * [`aggregate`] — monitoring aggregates with (multiple) control variates.
//! * [`engine`] — the high-level [`engine::VmqEngine`] API.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use vmq_aggregate as aggregate;
pub use vmq_core as engine;
pub use vmq_detect as detect;
pub use vmq_exec as exec;
pub use vmq_filters as filters;
pub use vmq_nn as nn;
pub use vmq_query as query;
pub use vmq_video as video;
