//! Sequence helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

/// Shuffling support for slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Index sampling (subset of `rand::seq::index`).
pub mod index {
    use crate::{Rng, RngCore};

    /// Result of [`sample`]; mirrors `rand::seq::index::IndexVec`.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The sampled indices as a vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True when nothing was sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    /// Samples `min(k, n)` distinct indices from `0..n`, in random order
    /// (partial Fisher–Yates over an index table).
    pub fn sample<R: RngCore>(rng: &mut R, n: usize, k: usize) -> IndexVec {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        IndexVec(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::SliceRandom;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(9);
        let idx = sample(&mut rng, 100, 20).into_vec();
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_caps_at_population() {
        let mut rng = StdRng::seed_from_u64(1);
        let idx = sample(&mut rng, 5, 10);
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
    }
}
