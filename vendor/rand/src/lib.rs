//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without access to a crates.io mirror, so this crate
//! implements the subset of the rand 0.8 API the workspace uses — `Rng`,
//! `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom` and `seq::index::sample`
//! — on top of a xoshiro256** generator seeded via SplitMix64. Streams are
//! deterministic per seed (which is all the workspace relies on) but do not
//! bit-match the real `StdRng`.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their full domain (the rand
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
float_ranges!(f32, f64);

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the `Standard` distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_not_constant() {
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<usize> = (0..50).map(|_| rng.gen_range(0usize..1000)).collect();
        assert!(draws.iter().any(|&d| d != draws[0]));
    }
}
