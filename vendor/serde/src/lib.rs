//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derives from the vendored `serde_derive`, so workspace types can
//! keep their `#[derive(Serialize, Deserialize)]` annotations while building
//! without access to crates.io. No code in the workspace serialises data via
//! serde yet; when a network-enabled build becomes possible this crate can be
//! swapped for the real one without touching any call sites.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
