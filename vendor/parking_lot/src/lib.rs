//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free-on-poison
//! API (`lock()` returns the guard directly). Poisoning is ignored, exactly
//! like parking_lot: a poisoned std lock simply hands back its inner guard.

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's `lock() -> MutexGuard` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RwLock with parking_lot's `read()` / `write()` signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let mut m = Mutex::new(1);
        *m.lock() += 1;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 3);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
