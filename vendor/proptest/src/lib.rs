//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use — the `proptest!` macro, `Strategy` with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, `proptest::bool::ANY` and the
//! `prop_assert!` family — over a deterministic RNG seeded from the test
//! name. There is no shrinking: a failing case panics with the case number so
//! it can be reproduced (generation is deterministic per test).

use rand::rngs::StdRng;
use rand::Rng;
pub use rand::SeedableRng;

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Creates the deterministic generator used by the [`proptest!`] macro.
#[doc(hidden)]
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministic per-test seed from the test's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator (subset of proptest's `Strategy`; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, mapper: f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    mapper: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.mapper)(self.strategy.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy generating both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Uniformly random booleans.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }` runs
/// `cases` times with fresh random inputs, deterministically seeded from the
/// test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng($crate::seed_from_name(stringify!($name)));
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest {} failed at case {}/{} (deterministic seed; re-run reproduces it)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 0usize..10, (x, y) in (0.0f32..1.0, -1.0f64..1.0)) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0i64..5).prop_map(|i| i * 2), 1..8), b in crate::bool::ANY) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }
}
