//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `Criterion::bench_function`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! warmup-then-measure loop and a plain-text summary (mean, min, max per
//! benchmark). No statistical analysis, HTML reports or comparison runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark runner (subset of criterion's `Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up: run the routine until the warm-up budget is spent, and use
        // the observed per-iteration time to size the measured batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let per_iter = if warm_iters > 0 { warm_start.elapsed().as_secs_f64() / warm_iters as f64 } else { 1e-3 };
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<55} time: [{} {} {}]  ({} samples x {} iters)",
            format_time(min),
            format_time(mean),
            format_time(max),
            samples.len(),
            iters_per_sample,
        );
        self
    }

    /// Compatibility no-op (criterion prints a summary at exit).
    pub fn final_summary(&self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Timing harness handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group (subset of criterion's `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with("s"));
    }
}
