//! Offline stand-in for `serde_derive`.
//!
//! The workspace is built without network access to a crates.io mirror, so
//! the real `serde` cannot be vendored. Nothing in the workspace actually
//! serialises data yet — the `#[derive(Serialize, Deserialize)]` annotations
//! exist so the types are ready for a real backend — therefore the derives
//! here accept the same syntax (including `#[serde(...)]` helper attributes)
//! and expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
